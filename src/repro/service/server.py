"""The HTTP/JSON front end: ``repro serve``.

Stdlib-only (``http.server``), bound to localhost by default, threaded
so a streaming results reader does not block a status poll. The wire
format is plain JSON; streaming results are NDJSON (one JSON object
per line), which both ``curl`` and the bundled client parse trivially.
Cache entries travel as raw bytes (digest-addressed, integrity-checked).

Surface (all under ``/v1``):

=========  ==============================  ====================================
method     path                            semantics
=========  ==============================  ====================================
GET        ``/v1/ping``                    liveness: ``{"ok": true}``
GET        ``/v1/stats``                   queue/admission/tenant telemetry
GET        ``/v1/jobs``                    all jobs, oldest first
POST       ``/v1/jobs``                    submit; 201, or 429 with a reason
GET        ``/v1/jobs/<id>``               lifecycle + journal progress
POST       ``/v1/jobs/<id>/cancel``        cancel queued/running (idempotent)
GET        ``/v1/jobs/<id>/results``       NDJSON per-point stream (``?wait=1``
                                           follows until the job finishes)
GET/HEAD   ``/v1/cache/<relpath>``         digest-addressed cache entry bytes
PUT        ``/v1/cache/<relpath>``         land an entry (digest-verified,
                                           atomic temp + ``os.replace``)
GET        ``/v1/runs/<id>``               run progress (pending/done/failed)
POST       ``/v1/runs/<id>/claim``         bid for the next claimable point
POST       ``/v1/runs/<id>/heartbeat``     renew a lease (owner only)
POST       ``/v1/runs/<id>/release``       give a claim back
POST       ``/v1/runs/<id>/done``          journal a completion (owner only)
POST       ``/v1/runs/<id>/failed``        journal a failure
POST       ``/v1/runs/<id>/finish``        journal worker stats; seal if drained
=========  ==============================  ====================================

A submission body is ``{"points": [{"app", "variant", "config"?}...],
"tenant"?, "workers"?}``; a missing config means the paper's POWER5
baseline. Unknown apps/variants and malformed bodies are 400s, unknown
job ids 404s, admission rejections 429s, oversized bodies 413s, and
unhandled handler exceptions JSON 500s — all with a JSON ``error``
body carrying a machine-readable ``reason`` where one exists. With a
shared-secret token configured (``--token`` / ``REPRO_SERVICE_TOKEN``)
every route except ``/v1/ping`` requires ``Authorization: Bearer
<token>`` and rejects with a 401 (``reason`` ``auth_required`` or
``bad_token``), so the front end can bind beyond localhost.
"""

from __future__ import annotations

import hmac
import json
import os
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import urlparse

from repro.engine.journal import RunJournal, load_run
from repro.engine.serialize import config_from_dict
from repro.errors import ReproError
from repro.perf.characterize import APP_WORKLOADS, VARIANTS
from repro.service.claims import DEFAULT_LEASE_SECONDS, ClaimClient
from repro.service.jobs import AdmissionError, JobManager
from repro.service.remote import ENV_TOKEN, payload_digest
from repro.uarch.config import power5

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Request-body ceilings. JSON bodies (submissions, claim protocol)
#: are small; cache entries (trace blobs) can be large but must still
#: be bounded — an unbounded ``Content-Length`` is a memory DoS.
MAX_JSON_BODY = 4 * 1024 * 1024
MAX_CACHE_BODY = 512 * 1024 * 1024


class BadRequest(ReproError):
    """A malformed or semantically invalid request body (HTTP 400)."""

    def __init__(self, message: str, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class PayloadTooLarge(ReproError):
    """A request body exceeded the configured ceiling (HTTP 413)."""


def parse_points(raw) -> list:
    """Validate a submission's point list into live config triples."""
    if not isinstance(raw, list) or not raw:
        raise BadRequest("points must be a non-empty list")
    points = []
    for index, item in enumerate(raw):
        if not isinstance(item, dict):
            raise BadRequest(f"points[{index}] must be an object")
        app = item.get("app")
        if app not in APP_WORKLOADS:
            raise BadRequest(
                f"points[{index}].app {app!r} unknown; have "
                f"{sorted(APP_WORKLOADS)}"
            )
        variant = item.get("variant", "baseline")
        if variant not in VARIANTS:
            raise BadRequest(
                f"points[{index}].variant {variant!r} unknown; have "
                f"{list(VARIANTS)}"
            )
        payload = item.get("config")
        if payload is None:
            config = power5()
        else:
            try:
                config = config_from_dict(payload)
            except Exception as error:
                raise BadRequest(
                    f"points[{index}].config invalid: {error}"
                ) from None
        points.append((app, variant, config))
    return points


def _safe_relpath(parts: list[str]) -> str:
    """Decode and sanity-check a ``/v1/cache/...`` entry path."""
    segments = [urllib.parse.unquote(part) for part in parts]
    if not segments:
        raise BadRequest("cache path required", reason="bad_path")
    for segment in segments:
        if (
            not segment
            or segment in (".", "..")
            or "/" in segment
            or "\\" in segment
            or segment.startswith(".tmp-")
        ):
            raise BadRequest(
                f"cache path segment {segment!r} rejected",
                reason="bad_path",
            )
    return "/".join(segments)


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`JobManager`."""

    server_version = "repro-sweep-service"
    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    @property
    def cache_base(self) -> Path:
        return Path(self.manager.cache_root)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, status: int, payload: dict,
                   extra_headers: dict | None = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, reason: str = ""
    ) -> None:
        payload = {"error": message}
        if reason:
            payload["reason"] = reason
        extra = None
        if status == 401:
            extra = {"WWW-Authenticate": "Bearer"}
        self._send_json(status, payload, extra_headers=extra)

    def _read_exact(self, length: int) -> bytes:
        """Read exactly ``length`` body bytes (or raise on a torn one).

        ``Content-Length`` is a claim, not a fact: a client that dies
        mid-upload leaves fewer bytes on the socket. Looping ``read``
        until the declared length (or EOF) makes the tear detectable
        instead of landing a prefix as if it were the whole body.
        """
        chunks = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 20))
            if not chunk:
                raise BadRequest(
                    f"torn request body ({length - remaining} of "
                    f"{length} bytes)",
                    reason="torn_body",
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_body(self, limit: int = MAX_JSON_BODY) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise BadRequest("Content-Length is not an integer") from None
        if length > limit:
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte limit"
            )
        raw = self._read_exact(length) if length > 0 else b""
        if not raw:
            raise BadRequest("request body required")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise BadRequest("request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def _authorized(self, parts: list[str]) -> bool:
        """Enforce bearer-token auth (``/v1/ping`` stays open)."""
        token = getattr(self.server, "token", None)
        if not token or parts == ["v1", "ping"]:
            return True
        supplied = self.headers.get("Authorization") or ""
        if not supplied.startswith("Bearer "):
            self._send_error_json(
                401, "authorization required (Bearer token)",
                reason="auth_required",
            )
            return False
        if not hmac.compare_digest(supplied[len("Bearer "):], token):
            self._send_error_json(
                401, "bad bearer token", reason="bad_token",
            )
            return False
        return True

    def _dispatch(self, method: str) -> None:
        """Route one request; every failure becomes a JSON response."""
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if not self._authorized(parts):
            return
        try:
            self._route(method, url, parts)
        except PayloadTooLarge as error:
            self._send_error_json(413, str(error), reason="body_too_large")
        except BadRequest as error:
            self._send_error_json(400, str(error), reason=error.reason)
        except AdmissionError as error:
            self._send_error_json(429, str(error), reason=error.reason)
        except (TypeError, ValueError) as error:
            self._send_error_json(400, str(error))
        except ReproError as error:
            self._send_error_json(404, str(error))
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 - JSON 500, never HTML
            try:
                self._send_error_json(
                    500,
                    f"internal error: {type(error).__name__}: {error}",
                    reason="internal_error",
                )
            except OSError:
                self.close_connection = True

    def _route(self, method: str, url, parts: list[str]) -> None:
        if parts[:2] == ["v1", "cache"] and len(parts) > 2:
            relpath = _safe_relpath(parts[2:])
            if method == "GET":
                return self._cache_get(relpath, head=False)
            if method == "HEAD":
                return self._cache_get(relpath, head=True)
            if method == "PUT":
                return self._cache_put(relpath)
        if method == "GET":
            if parts == ["v1", "ping"]:
                return self._send_json(200, {"ok": True})
            if parts == ["v1", "stats"]:
                return self._send_json(200, self.manager.stats())
            if parts == ["v1", "jobs"]:
                return self._send_json(200, {
                    "jobs": [job.as_dict() for job in self.manager.jobs()],
                })
            if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                return self._send_json(200, self.manager.status(parts[2]))
            if (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                    and parts[3] == "results"):
                return self._stream_results(
                    parts[2], "wait=1" in (url.query or "")
                )
            if len(parts) == 3 and parts[:2] == ["v1", "runs"]:
                return self._run_state(parts[2])
        elif method == "POST":
            if parts == ["v1", "jobs"]:
                return self._submit_job()
            if (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                    and parts[3] == "cancel"):
                job = self.manager.cancel(parts[2])
                return self._send_json(200, job.as_dict())
            if len(parts) == 4 and parts[:2] == ["v1", "runs"]:
                return self._run_op(parts[2], parts[3])
        self._send_error_json(404, f"no route {url.path!r}")

    # -- jobs --------------------------------------------------------------

    def _submit_job(self) -> None:
        body = self._read_body()
        points = parse_points(body.get("points"))
        tenant = str(body.get("tenant") or "default")
        workers = body.get("workers")
        if workers is not None:
            workers = int(workers)
        job = self.manager.submit(points, tenant=tenant, workers=workers)
        self._send_json(201, job.as_dict())

    def _stream_results(self, job_id: str, wait: bool) -> None:
        stream = self.manager.stream_results(job_id, wait=wait)
        try:
            first = next(stream, None)
        except ReproError as error:
            self._send_error_json(404, str(error))
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # NDJSON streams until the generator ends; no Content-Length.
        self.send_header("Connection", "close")
        self.end_headers()
        if first is not None:
            for item in _chain_first(first, stream):
                line = json.dumps(item, sort_keys=True) + "\n"
                self.wfile.write(line.encode("utf-8"))
                self.wfile.flush()
        self.close_connection = True

    # -- the cache surface -------------------------------------------------

    def _cache_get(self, relpath: str, head: bool) -> None:
        path = self.cache_base / relpath
        try:
            data = path.read_bytes()
        except (OSError, ValueError):
            self._send_error_json(
                404, f"no cache entry {relpath!r}", reason="not_found",
            )
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Repro-Digest", payload_digest(data))
        self.end_headers()
        if not head:
            self.wfile.write(data)

    def _cache_put(self, relpath: str) -> None:
        limit = getattr(self.server, "max_cache_body", MAX_CACHE_BODY)
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise BadRequest("Content-Length is not an integer") from None
        if length <= 0:
            raise BadRequest("cache PUT requires a body")
        if length > limit:
            raise PayloadTooLarge(
                f"cache entry of {length} bytes exceeds the "
                f"{limit}-byte limit"
            )
        data = self._read_exact(length)
        expected = self.headers.get("X-Repro-Digest")
        if expected and payload_digest(data) != expected:
            raise BadRequest(
                f"cache PUT {relpath!r}: body digest mismatch "
                "(torn or corrupted upload)",
                reason="digest_mismatch",
            )
        path = self.cache_base / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        from repro.engine.cache import tmp_suffix

        tmp = path.with_name(f".{path.name}{tmp_suffix()}")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError as error:
            tmp.unlink(missing_ok=True)
            raise ReproError(
                f"cache PUT {relpath!r} failed to land: {error}"
            ) from None
        self._send_json(200, {"stored": True, "bytes": len(data)})

    # -- the networked claim protocol --------------------------------------

    def _run_state(self, run_id: str) -> None:
        state = load_run(self.cache_base, run_id)
        if state.corrupt is not None:
            raise ReproError(f"run {run_id!r} journal: {state.corrupt}")
        self._send_json(200, {
            "run_id": run_id,
            "pending": len(state.pending_keys()),
            "claimable": len(state.claimable_keys()),
            "done": len(state.done),
            "failed": len(state.failed),
            "complete": state.complete,
            "workers": sorted(state.workers),
        })

    def _run_op(self, run_id: str, op: str) -> None:
        body = self._read_body()
        worker = str(body.get("worker") or "")
        if not worker:
            raise BadRequest("worker id required")
        lease = float(body.get("lease_seconds") or DEFAULT_LEASE_SECONDS)
        if op == "finish":
            return self._run_finish(run_id, worker, body)
        client = ClaimClient(self.cache_base, run_id, worker, lease)
        try:
            if op == "claim":
                return self._run_claim(client)
            if op not in ("heartbeat", "release", "done", "failed"):
                raise ReproError(f"no run operation {op!r}")
            key = _key_from(body)
            if op == "heartbeat":
                client.heartbeat(key)
                return self._send_json(200, {"ok": True})
            if op == "release":
                client.release(key)
                return self._send_json(200, {"ok": True})
            if op == "done":
                digest = str(body.get("result_digest") or "")
                if not digest:
                    raise BadRequest("result_digest required")
                recorded = client.record_done(key, digest)
                return self._send_json(200, {"recorded": recorded})
            client.record_failed(
                key,
                str(body.get("kind") or "error"),
                str(body.get("error_type") or "Exception"),
                str(body.get("message") or ""),
            )
            return self._send_json(200, {"ok": True})
        finally:
            client.close()

    def _run_claim(self, client: ClaimClient) -> None:
        from repro.service.worker import _configs_by_key

        state = client.state()
        if state.corrupt is not None:
            raise ReproError(
                f"run {client.run_id!r} journal: {state.corrupt}"
            )
        configs = _configs_by_key(state)
        for key in state.claimable_keys():
            if key not in configs:
                continue  # damaged config payload: leave it pending
            if client.try_claim(key, state):
                app, variant, digest = key
                return self._send_json(200, {
                    "claimed": {
                        "app": app,
                        "variant": variant,
                        "config_digest": digest,
                        "config": configs[key],
                    },
                    "pending": len(state.pending_keys()),
                })
        return self._send_json(200, {
            "claimed": None,
            "pending": len(state.pending_keys()),
        })

    def _run_finish(self, run_id: str, worker: str, body: dict) -> None:
        stats = body.get("stats") or {}
        if not isinstance(stats, dict):
            raise BadRequest("stats must be an object")
        with RunJournal.attach(self.cache_base, run_id) as journal:
            journal.record_worker_stats(worker, stats)
        # The worker that drains the last point seals the run (a second
        # footer from a racing worker is identical and harmless).
        state = load_run(self.cache_base, run_id)
        sealed = False
        if not state.pending_keys() and not state.complete:
            with RunJournal.attach(self.cache_base, run_id) as journal:
                journal.record_complete(len(state.failed))
            sealed = True
        self._send_json(200, {"ok": True, "sealed": sealed})

    # -- stdlib entry points -----------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        self._dispatch("GET")

    def do_HEAD(self) -> None:  # noqa: N802 - stdlib name
        self._dispatch("HEAD")

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802 - stdlib name
        self._dispatch("PUT")


def _key_from(body: dict) -> tuple[str, str, str]:
    key = body.get("key") or {}
    if not isinstance(key, dict):
        raise BadRequest("key must be an object")
    app = key.get("app")
    variant = key.get("variant")
    digest = key.get("config_digest")
    if not (app and variant and digest):
        raise BadRequest(
            "key requires app, variant and config_digest"
        )
    return (str(app), str(variant), str(digest))


def _chain_first(first, rest):
    yield first
    yield from rest


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` owning one :class:`JobManager`."""

    daemon_threads = True

    def __init__(self, address, manager: JobManager,
                 verbose: bool = False,
                 token: str | None = None,
                 max_cache_body: int = MAX_CACHE_BODY) -> None:
        super().__init__(address, ServiceHandler)
        self.manager = manager
        self.verbose = verbose
        self.token = (
            token if token is not None
            else os.environ.get(ENV_TOKEN) or None
        )
        self.max_cache_body = max_cache_body


def make_server(
    cache_root: Path | str,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    verbose: bool = False,
    token: str | None = None,
    **manager_options,
) -> ServiceServer:
    """Bind a service (port 0 picks a free port); caller serves/closes."""
    manager = JobManager(cache_root, **manager_options)
    return ServiceServer((host, port), manager, verbose=verbose,
                         token=token)


def serve(
    cache_root: Path | str,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    verbose: bool = False,
    token: str | None = None,
    ready: threading.Event | None = None,
    **manager_options,
) -> None:
    """Run the service until interrupted (the ``repro serve`` body)."""
    server = make_server(
        cache_root, host, port, verbose=verbose, token=token,
        **manager_options,
    )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.manager.shutdown()
        server.server_close()
