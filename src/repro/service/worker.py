"""The drain loop one sweep-service worker runs.

A worker attaches to an existing journaled run and loops: read the
journal, pick the first claimable point (pending, no live lease), bid
for it, and on a confirmed claim simulate the point with a heartbeat
thread renewing the lease in the background. Completions and failures
are journaled through the claim client's ownership checks, so several
workers draining one run against a shared cache directory produce the
same record stream a single worker would — and a worker killed
mid-point simply lets its lease expire, handing the point to whoever
bids next.

Fault injection (tests only): ``REPRO_WORKER_HOLD_KEY=app:variant``
parks the worker forever right after it claims the matching point —
*before* any heartbeat — and touches ``REPRO_WORKER_HOLD_FILE`` so the
test knows the claim landed. Killing the parked worker then exercises
the expiry-reclaim path end to end.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine import serialize
from repro.engine.cache import use_cache_dir
from repro.engine.digest import result_payload_digest
from repro.engine.journal import RunState, config_digest_of
from repro.errors import WorkloadError
from repro.service.claims import DEFAULT_LEASE_SECONDS, ClaimClient, ClaimStats

#: How long an idle worker waits before re-reading the journal when
#: every pending point is leased to someone else.
DEFAULT_POLL_SECONDS = 0.2


@dataclass
class WorkerReport:
    """What one worker did to a run (returned by :func:`drain_run`)."""

    worker_id: str
    run_id: str
    completed: list = field(default_factory=list)
    failed: list = field(default_factory=list)
    stats: ClaimStats = field(default_factory=ClaimStats)

    def as_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "run_id": self.run_id,
            "completed": len(self.completed),
            "failed": len(self.failed),
            **self.stats.as_dict(),
        }


def default_worker_id() -> str:
    return f"worker-{os.getpid()}"


def _configs_by_key(state: RunState) -> dict:
    """Unique point key -> journaled config payload (first occurrence)."""
    table: dict = {}
    for app, variant, payload in state.points:
        try:
            digest = config_digest_of(payload)
        except Exception:
            continue  # unclaimable either way; listed via fallback digest
        table.setdefault((app, variant, digest), payload)
    return table


def _heartbeat_loop(
    client: ClaimClient,
    key: tuple[str, str, str],
    stop: threading.Event,
    interval: float,
) -> None:
    while not stop.wait(interval):
        try:
            client.heartbeat(key)
        except Exception:
            return  # journal closed underneath us: the drain is over


def _maybe_hold(key: tuple[str, str, str]) -> None:
    """Test-only fault injection: park forever on the configured point."""
    target = os.environ.get("REPRO_WORKER_HOLD_KEY", "")
    if not target or target != f"{key[0]}:{key[1]}":
        return
    marker = os.environ.get("REPRO_WORKER_HOLD_FILE", "")
    if marker:
        Path(marker).touch()
    while True:  # no heartbeats: the lease must expire; SIGKILL ends us
        time.sleep(0.5)


def drain_run(
    cache_root: Path | str,
    run_id: str,
    *,
    worker_id: str | None = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    heartbeat_seconds: float | None = None,
    poll_seconds: float = DEFAULT_POLL_SECONDS,
    max_points: int | None = None,
) -> WorkerReport:
    """Drain claimable points from one run until none are pending.

    Re-points the process-wide cache at ``cache_root`` (exactly like
    the scheduler's pool workers: the perf-layer trace store persists
    through the process-wide cache) and runs each claimed point through
    a fresh engine's memo -> disk -> simulate path, so two workers
    sharing a cache directory share traces and results.

    ``max_points`` bounds how many points this worker takes (tests use
    it to force a deterministic split across workers). Returns a
    :class:`WorkerReport`; the same counters are journaled as a
    ``worker_stats`` record.
    """
    from repro.engine.engine import Engine

    worker_id = worker_id or default_worker_id()
    if lease_seconds <= 0:
        raise WorkloadError(
            f"lease must be positive, got {lease_seconds}"
        )
    if heartbeat_seconds is None:
        heartbeat_seconds = max(lease_seconds / 3.0, 0.05)

    use_cache_dir(cache_root)
    engine = Engine()
    client = ClaimClient(cache_root, run_id, worker_id, lease_seconds)
    report = WorkerReport(
        worker_id=worker_id, run_id=run_id, stats=client.stats
    )
    try:
        configs: dict | None = None
        while True:
            taken = len(report.completed) + len(report.failed)
            if max_points is not None and taken >= max_points:
                break
            state = client.state()
            if state.corrupt is not None:
                raise WorkloadError(
                    f"cannot drain run {run_id!r}: {state.corrupt}"
                )
            if configs is None:
                configs = _configs_by_key(state)
            if not state.pending_keys():
                break
            claimed = None
            for key in state.claimable_keys():
                if key not in configs:
                    continue  # damaged config payload: leave it pending
                if client.try_claim(key, state):
                    claimed = key
                    break
            if claimed is None:
                # Everything pending is leased out (or unclaimable);
                # wait for completions or expiries.
                time.sleep(poll_seconds)
                continue
            _maybe_hold(claimed)
            app, variant, _ = claimed
            config = serialize.config_from_dict(configs[claimed])
            stop = threading.Event()
            beat = threading.Thread(
                target=_heartbeat_loop,
                args=(client, claimed, stop, heartbeat_seconds),
                name=f"repro-heartbeat-{worker_id}",
                daemon=True,
            )
            beat.start()
            try:
                result = engine.characterize(app, variant, config)
            except Exception as error:
                stop.set()
                beat.join()
                client.record_failed(
                    claimed, "error", type(error).__name__, str(error)
                )
                client.release(claimed)
                report.failed.append(claimed)
                continue
            stop.set()
            beat.join()
            payload = serialize.characterisation_to_dict(result)
            if client.record_done(claimed, result_payload_digest(payload)):
                report.completed.append(claimed)
    finally:
        client.finish()
        _fold_into_engine_stats(engine.stats, client.stats)
    return report


def _fold_into_engine_stats(stats, claim_stats: ClaimStats) -> None:
    """Merge claim counters into engine telemetry (best-effort: the
    fields exist from telemetry schema 6 on)."""
    try:
        stats.claims += claim_stats.claims
        stats.claim_conflicts += claim_stats.claim_conflicts
        stats.claim_steals += claim_stats.claim_steals
        stats.heartbeats += claim_stats.heartbeats
        stats.lost_leases += claim_stats.lost_leases
    except AttributeError:
        pass


def _remote_heartbeat_loop(
    client,
    run_id: str,
    worker_id: str,
    key: dict,
    lease_seconds: float,
    stop: threading.Event,
    interval: float,
    stats: ClaimStats,
) -> None:
    """Renew a networked lease until told to stop.

    Unlike the local loop (where an error means the journal is closed
    and the drain is over), a networked heartbeat failure is usually a
    transient partition — the lease may still be live, so the loop
    keeps trying until the point is finished. A genuinely lost lease is
    caught by the server's ownership re-check on ``done``.
    """
    while not stop.wait(interval):
        try:
            client.heartbeat(run_id, worker_id, key, lease_seconds)
            stats.heartbeats += 1
        except Exception:
            continue


def drain_run_remote(
    url: str,
    run_id: str,
    *,
    cache_root: Path | str | None = None,
    worker_id: str | None = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    heartbeat_seconds: float | None = None,
    poll_seconds: float = DEFAULT_POLL_SECONDS,
    max_points: int | None = None,
    token: str | None = None,
    client=None,
    transport=None,
) -> WorkerReport:
    """Drain a run over the network: claims via the service's job API,
    cache entries via the HTTP transport.

    The worker owns a *local* scratch cache at ``cache_root`` (a fresh
    temp directory if omitted) layered as a :class:`SharedCache` over
    the service's ``/v1/cache/`` endpoints: traces fetched on demand,
    results pushed back. All remote traffic rides the resilience layer,
    so a flaky network degrades the worker to local-only simulation
    instead of failing it; a point's result payload is synchronously
    replicated (waiting out an open circuit) *before* ``point_done`` is
    journaled, so a digest the journal records is always loadable from
    the service's cache. ``client`` and ``transport`` are injectable
    for the chaos harness.
    """
    from repro.engine.cache import use_cache
    from repro.engine.engine import Engine
    from repro.service.client import ServiceClient
    from repro.service.remote import HttpTransport, SharedCache

    worker_id = worker_id or default_worker_id()
    if lease_seconds <= 0:
        raise WorkloadError(
            f"lease must be positive, got {lease_seconds}"
        )
    if heartbeat_seconds is None:
        heartbeat_seconds = max(lease_seconds / 3.0, 0.05)
    if cache_root is None:
        import tempfile

        cache_root = tempfile.mkdtemp(prefix="repro-net-worker-")

    if client is None:
        client = ServiceClient(url, token=token)
    if transport is None:
        transport = HttpTransport(url, token=token)
    shared = SharedCache(cache_root, transport)
    use_cache(shared)
    engine = Engine()
    stats = ClaimStats()
    report = WorkerReport(
        worker_id=worker_id, run_id=run_id, stats=stats
    )
    try:
        while True:
            taken = len(report.completed) + len(report.failed)
            if max_points is not None and taken >= max_points:
                break
            bid = client.claim(run_id, worker_id, lease_seconds)
            claimed = bid.get("claimed")
            if claimed is None:
                if not bid.get("pending"):
                    break
                time.sleep(poll_seconds)
                continue
            stats.claims += 1
            app = claimed["app"]
            variant = claimed["variant"]
            key = {
                "app": app,
                "variant": variant,
                "config_digest": claimed["config_digest"],
            }
            key_tuple = (app, variant, claimed["config_digest"])
            _maybe_hold(key_tuple)
            config = serialize.config_from_dict(claimed["config"])
            stop = threading.Event()
            beat = threading.Thread(
                target=_remote_heartbeat_loop,
                args=(client, run_id, worker_id, key, lease_seconds,
                      stop, heartbeat_seconds, stats),
                name=f"repro-net-heartbeat-{worker_id}",
                daemon=True,
            )
            beat.start()
            try:
                result = engine.characterize(app, variant, config)
                payload = serialize.characterisation_to_dict(result)
                digest = result_payload_digest(payload)
                result_path = shared.result_path(
                    app, variant, claimed["config_digest"]
                )
                if not result_path.exists():
                    raise WorkloadError(
                        f"result for {app}:{variant} was not committed "
                        "to the local cache"
                    )
                # The journal must never name a digest the service
                # cannot serve: replicate before recording done.
                shared.replicate_now(result_path)
            except Exception as error:
                stop.set()
                beat.join()
                try:
                    client.failed(
                        run_id, worker_id, key, "error",
                        type(error).__name__, str(error),
                    )
                    client.release(run_id, worker_id, key)
                except Exception:
                    pass  # lease expiry hands the point to the next bidder
                report.failed.append(key_tuple)
                continue
            stop.set()
            beat.join()
            if client.done(run_id, worker_id, key, digest):
                report.completed.append(key_tuple)
            else:
                stats.lost_leases += 1
    finally:
        shared.close()
        _fold_into_engine_stats(engine.stats, stats)
        _fold_resilience(engine.stats, shared, client)
        try:
            client.finish_worker(
                run_id, worker_id, _finish_stats(stats, shared, client)
            )
        except Exception:
            pass  # the run still seals via any later worker's finish
    return report


def _finish_stats(stats: ClaimStats, shared, client) -> dict:
    """The (integer) counters a networked worker journals on finish."""
    resilience = shared.resilience()
    return {
        **stats.as_dict(),
        "net_retries": int(
            resilience["retries"] + client.retry.stats.retries
        ),
        "breaker_trips": int(resilience["breaker_trips"]),
        "degraded_ms": int(resilience["degraded_seconds"] * 1000),
        "remote_hits": int(resilience["remote_hits"]),
        "remote_misses": int(resilience["remote_misses"]),
        "remote_pushes": int(resilience["remote_pushes"]),
        "drained_pushes": int(resilience["drained_pushes"]),
    }


def _fold_resilience(stats, shared, client) -> None:
    """Merge remote-tier counters into engine telemetry (schema 7)."""
    resilience = shared.resilience()
    try:
        stats.net_retries += (
            resilience["retries"] + client.retry.stats.retries
        )
        stats.breaker_trips += resilience["breaker_trips"]
        stats.degraded_seconds += resilience["degraded_seconds"]
        stats.remote_hits += resilience["remote_hits"]
        stats.remote_misses += resilience["remote_misses"]
        stats.remote_pushes += resilience["remote_pushes"]
        stats.queued_pushes += resilience["queued_pushes"]
        stats.drained_pushes += resilience["drained_pushes"]
    except AttributeError:
        pass
