"""Network-resilience primitives: retry policies and circuit breakers.

Going over the wire (HTTP cache tier, networked workers) means every
call can time out, tear, or lie. This module supplies the two guards
every remote call in :mod:`repro.service` rides:

* :class:`RetryPolicy` — bounded retries with exponential backoff,
  **deterministic** jitter (hashed from a seed + operation + attempt,
  never ``random``: two runs of the same plan sleep the same amounts),
  and a per-call deadline so a retry loop can never outlive its
  caller's patience;
* :class:`CircuitBreaker` — the classic closed/open/half-open state
  machine. Failures trip it (consecutive-failure or failure-rate over
  a sliding window); while open every call is rejected instantly
  (callers degrade instead of stacking timeouts); after a cooling-off
  period exactly **one** probe is admitted (half-open) and its outcome
  either closes the circuit or re-opens it with a longer backoff.

Both are transport-agnostic: they wrap any callable. The shared-cache
tier (:mod:`repro.service.remote`) composes them — retries inside one
breaker-accounted call — and exposes the counters through ``stats()``
and the schema-7 telemetry ``resilience`` block.

Everything is injectable (``clock``, ``sleep``) so the state-machine
edge cases are unit-testable without real waiting.
"""

from __future__ import annotations

import hashlib
import http.client
import threading
import time
import urllib.error
from collections import deque
from dataclasses import dataclass

from repro.errors import ReproError

#: Circuit states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class TransientError(ReproError):
    """An operation failed in a way that is safe to retry.

    Transports raise this for network-shaped failures (connection
    reset, 5xx, torn body) so the retry/breaker layer can distinguish
    them from permanent errors (bad auth, malformed request) that must
    surface immediately.
    """


class CircuitOpenError(ReproError):
    """A call was rejected because the circuit is open (no I/O done)."""


def default_transient(error: BaseException) -> bool:
    """Whether ``error`` is worth retrying.

    Server-side errors (HTTP 5xx) and anything network-shaped
    (connection reset, timeout, DNS failure, torn HTTP body) are
    transient; HTTP 4xx — the request itself is wrong — is not.
    """
    if isinstance(error, urllib.error.HTTPError):
        return error.code >= 500
    return isinstance(
        error,
        (
            TransientError,
            ConnectionError,
            TimeoutError,
            http.client.HTTPException,
            urllib.error.URLError,
            OSError,
        ),
    )


def _fraction(seed: int, operation: str, attempt: int) -> float:
    """A deterministic jitter fraction in ``[0, 1)``."""
    digest = hashlib.sha256(
        f"{seed}:{operation}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass
class RetryStats:
    """One policy's counters (folded into cache/engine telemetry)."""

    calls: int = 0
    retries: int = 0
    giveups: int = 0
    deadline_giveups: int = 0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "retries": self.retries,
            "giveups": self.giveups,
            "deadline_giveups": self.deadline_giveups,
        }


class RetryPolicy:
    """Bounded retries, exponential backoff, deterministic jitter.

    ``attempts`` is the total number of tries (1 = no retry). Delay for
    attempt *n* (0-based) is ``base_delay * 2**n`` capped at
    ``max_delay``, stretched by up to ``jitter`` of itself using a
    hash-derived fraction — deterministic for a given ``seed`` and
    operation name, so fault-plan replays sleep identically.
    ``deadline_seconds`` bounds the whole call: a retry that would
    start after the deadline is abandoned and the last error re-raised.
    """

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        deadline_seconds: float = 30.0,
        jitter: float = 0.5,
        seed: int = 0,
        transient=default_transient,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if attempts < 1:
            raise ReproError(f"attempts must be >= 1, got {attempts}")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.deadline_seconds = deadline_seconds
        self.jitter = jitter
        self.seed = seed
        self.transient = transient
        self.clock = clock
        self.sleep = sleep
        self.stats = RetryStats()

    def backoff(self, attempt: int, operation: str = "") -> float:
        """The delay before retry ``attempt + 1`` (deterministic)."""
        delay = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        return delay * (
            1.0 + self.jitter * _fraction(self.seed, operation, attempt)
        )

    def call(self, operation: str, fn, *args, **kwargs):
        """Run ``fn`` under this policy; returns its value.

        Non-transient errors propagate immediately. Transient errors
        are retried up to ``attempts`` times within the deadline; the
        last one is re-raised when the budget runs out.
        """
        self.stats.calls += 1
        start = self.clock()
        last: BaseException | None = None
        for attempt in range(self.attempts):
            try:
                return fn(*args, **kwargs)
            except Exception as error:
                if not self.transient(error):
                    raise
                last = error
                if attempt + 1 >= self.attempts:
                    self.stats.giveups += 1
                    break
                delay = self.backoff(attempt, operation)
                elapsed = self.clock() - start
                if elapsed + delay >= self.deadline_seconds:
                    self.stats.deadline_giveups += 1
                    self.stats.giveups += 1
                    break
                self.stats.retries += 1
                self.sleep(delay)
        assert last is not None
        raise last


@dataclass
class BreakerStats:
    """One breaker's counters (folded into cache/engine telemetry)."""

    trips: int = 0
    rejections: int = 0
    probes: int = 0
    recoveries: int = 0

    def as_dict(self) -> dict:
        return {
            "trips": self.trips,
            "rejections": self.rejections,
            "probes": self.probes,
            "recoveries": self.recoveries,
        }


class CircuitBreaker:
    """Closed/open/half-open circuit with failure-rate trip and probes.

    * **closed** — calls flow; outcomes land in a sliding window. The
      circuit trips open on ``consecutive_failures`` failures in a row,
      or once the window holds at least ``min_calls`` outcomes with a
      failure fraction >= ``failure_rate``.
    * **open** — every :meth:`allow` is rejected (no I/O) until
      ``reset_timeout`` has passed since the trip.
    * **half-open** — exactly one caller is admitted as the probe
      (concurrent callers keep being rejected until its outcome is
      recorded). Probe success closes the circuit and resets the
      timeout to its base; probe failure re-opens it with the timeout
      scaled by ``backoff_factor`` (capped at ``max_reset_timeout``).

    The breaker also keeps the degradation clock: the total time spent
    away from ``closed`` is :meth:`degraded_seconds`, which feeds the
    telemetry ``resilience`` block. Thread-safe; ``clock`` is
    injectable for tests.
    """

    def __init__(
        self,
        name: str = "remote",
        window: int = 10,
        min_calls: int = 3,
        failure_rate: float = 0.5,
        consecutive_failures: int = 3,
        reset_timeout: float = 2.0,
        backoff_factor: float = 2.0,
        max_reset_timeout: float = 60.0,
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self.min_calls = min_calls
        self.failure_rate = failure_rate
        self.consecutive_failures = consecutive_failures
        self.base_reset_timeout = reset_timeout
        self.backoff_factor = backoff_factor
        self.max_reset_timeout = max_reset_timeout
        self.clock = clock
        self.stats = BreakerStats()
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._consecutive = 0
        self._opened_at = 0.0
        self._timeout = reset_timeout
        self._probe_in_flight = False
        self._degraded_since: float | None = None
        self._degraded_total = 0.0

    # -- state -------------------------------------------------------------

    def _state_locked(self) -> str:
        if (
            self._state == OPEN
            and self.clock() - self._opened_at >= self._timeout
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False
        return self._state

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    @property
    def reset_timeout(self) -> float:
        with self._lock:
            return self._timeout

    def degraded_seconds(self) -> float:
        """Total wall time spent away from ``closed`` (live interval
        included)."""
        with self._lock:
            total = self._degraded_total
            if self._degraded_since is not None:
                total += self.clock() - self._degraded_since
            return total

    # -- the protocol ------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?

        ``True`` in the closed state, and for exactly one caller per
        half-open period (the probe — that caller *must* report its
        outcome via :meth:`record_success` / :meth:`record_failure`).
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                self.stats.probes += 1
                return True
            self.stats.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # Probe succeeded: full recovery, base timeout restored.
                self._state = CLOSED
                self._probe_in_flight = False
                self._outcomes.clear()
                self._consecutive = 0
                self._timeout = self.base_reset_timeout
                self.stats.recoveries += 1
                if self._degraded_since is not None:
                    self._degraded_total += (
                        self.clock() - self._degraded_since
                    )
                    self._degraded_since = None
            elif self._state == CLOSED:
                self._outcomes.append(True)
                self._consecutive = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # Probe failed: re-open, longer cooling-off.
                self._timeout = min(
                    self._timeout * self.backoff_factor,
                    self.max_reset_timeout,
                )
                self._trip_locked()
            elif self._state == CLOSED:
                self._outcomes.append(False)
                self._consecutive += 1
                failures = sum(
                    1 for outcome in self._outcomes if not outcome
                )
                rate_tripped = (
                    len(self._outcomes) >= self.min_calls
                    and failures / len(self._outcomes) >= self.failure_rate
                )
                if (
                    self._consecutive >= self.consecutive_failures
                    or rate_tripped
                ):
                    self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self.clock()
        self._probe_in_flight = False
        self._outcomes.clear()
        self._consecutive = 0
        self.stats.trips += 1
        if self._degraded_since is None:
            self._degraded_since = self._opened_at

    def call(self, fn, *args, **kwargs):
        """Run ``fn`` through the breaker (reject, record, propagate)."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is {self.state} "
                f"(retry in <= {self.reset_timeout:g}s)"
            )
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
