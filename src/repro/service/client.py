"""The service's Python/CLI client (urllib, stdlib-only).

Thin and honest: every method is one HTTP round trip; errors come back
as :class:`~repro.errors.ReproError` (or :class:`AdmissionError` for
429s) carrying the server's JSON ``error`` message, so CLI users see
the same diagnostics the server logged.

Built for unreliable networks: transient failures (connection resets,
timeouts, HTTP 5xx) ride a :class:`~repro.service.resilience.RetryPolicy`
— bounded attempts, exponential backoff with deterministic jitter —
before surfacing. Client errors (4xx) never retry: the request itself
is wrong, and admission rejections (429) are a scheduling decision,
not a network fault. With ``token`` set (or ``REPRO_SERVICE_TOKEN`` in
the environment) every request carries ``Authorization: Bearer``.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

from repro.errors import ReproError
from repro.service.jobs import AdmissionError
from repro.service.remote import ENV_TOKEN
from repro.service.resilience import RetryPolicy

DEFAULT_URL = "http://127.0.0.1:8642"


def _default_retry() -> RetryPolicy:
    return RetryPolicy(
        attempts=4, base_delay=0.1, max_delay=2.0, deadline_seconds=30.0
    )


class ServiceClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, base_url: str = DEFAULT_URL,
                 timeout: float = 30.0,
                 retry: RetryPolicy | None = None,
                 token: str | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else _default_retry()
        self.token = (
            token if token is not None
            else os.environ.get(ENV_TOKEN) or None
        )

    # -- plumbing ----------------------------------------------------------

    def _open(self, method: str, path: str, payload: dict | None):
        """One raw round trip (the seam the retry policy wraps)."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers,
            method=method,
        )
        return urllib.request.urlopen(request, timeout=self.timeout)

    def _request(self, method: str, path: str, payload: dict | None = None):
        try:
            return self.retry.call(
                f"{method} {path}", self._open, method, path, payload
            )
        except urllib.error.HTTPError as error:
            raise self._to_error(error) from None
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach sweep service at {self.base_url}: "
                f"{error.reason}"
            ) from None
        except (ConnectionError, TimeoutError, OSError) as error:
            raise ReproError(
                f"cannot reach sweep service at {self.base_url}: {error}"
            ) from None

    @staticmethod
    def _to_error(error: urllib.error.HTTPError) -> ReproError:
        try:
            payload = json.loads(error.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = {}
        message = payload.get("error") or f"HTTP {error.code}"
        if error.code == 429:
            return AdmissionError(
                payload.get("reason", "rejected"), message
            )
        return ReproError(message)

    def _json(self, method: str, path: str,
              payload: dict | None = None) -> dict:
        with self._request(method, path, payload) as response:
            return json.loads(response.read().decode("utf-8"))

    # -- surface -----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._json("GET", "/v1/ping").get("ok"))

    def stats(self) -> dict:
        return self._json("GET", "/v1/stats")

    def jobs(self) -> list[dict]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def submit(
        self,
        points: list[dict],
        tenant: str = "default",
        workers: int | None = None,
    ) -> dict:
        """Submit ``[{"app", "variant", "config"?}, ...]``; job dict."""
        payload: dict = {"points": points, "tenant": tenant}
        if workers is not None:
            payload["workers"] = workers
        return self._json("POST", "/v1/jobs", payload)

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/v1/jobs/{job_id}/cancel", {})

    def results(self, job_id: str, wait: bool = False):
        """Yield per-point result descriptors (NDJSON stream)."""
        suffix = "?wait=1" if wait else ""
        response = self._request(
            "GET", f"/v1/jobs/{job_id}/results{suffix}"
        )
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(self, job_id: str, poll_seconds: float = 0.5,
             timeout: float = 600.0) -> dict:
        """Poll until the job reaches a final state; the final dict.

        Individual polls ride the retry policy (a mid-wait connection
        blip is absorbed, not fatal); the overall timeout still bounds
        the wait and raises naming the job.
        """
        import time

        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] not in ("queued", "running"):
                return job
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"job {job_id!r} still {job['state']} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_seconds)

    # -- the networked claim protocol ---------------------------------------

    def run_state(self, run_id: str) -> dict:
        return self._json("GET", f"/v1/runs/{run_id}")

    def claim(self, run_id: str, worker: str,
              lease_seconds: float) -> dict:
        """Bid for the next claimable point; ``{"claimed": ..., "pending"}``.

        ``claimed`` is null when nothing is claimable right now (the
        worker should poll again until ``pending`` hits zero).
        """
        return self._json("POST", f"/v1/runs/{run_id}/claim", {
            "worker": worker, "lease_seconds": lease_seconds,
        })

    def heartbeat(self, run_id: str, worker: str,
                  key: dict, lease_seconds: float) -> dict:
        return self._json("POST", f"/v1/runs/{run_id}/heartbeat", {
            "worker": worker, "key": key, "lease_seconds": lease_seconds,
        })

    def release(self, run_id: str, worker: str, key: dict) -> dict:
        return self._json("POST", f"/v1/runs/{run_id}/release", {
            "worker": worker, "key": key,
        })

    def done(self, run_id: str, worker: str, key: dict,
             result_digest: str) -> bool:
        """Journal a completion; False means the lease was lost."""
        payload = self._json("POST", f"/v1/runs/{run_id}/done", {
            "worker": worker, "key": key, "result_digest": result_digest,
        })
        return bool(payload.get("recorded"))

    def failed(self, run_id: str, worker: str, key: dict,
               kind: str, error_type: str, message: str) -> dict:
        return self._json("POST", f"/v1/runs/{run_id}/failed", {
            "worker": worker, "key": key, "kind": kind,
            "error_type": error_type, "message": message,
        })

    def finish_worker(self, run_id: str, worker: str,
                      stats: dict) -> dict:
        """Journal this worker's counters; seals the run if drained."""
        return self._json("POST", f"/v1/runs/{run_id}/finish", {
            "worker": worker, "stats": stats,
        })
