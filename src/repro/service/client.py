"""The service's Python/CLI client (urllib, stdlib-only).

Thin and honest: every method is one HTTP round trip; errors come back
as :class:`~repro.errors.ReproError` (or :class:`AdmissionError` for
429s) carrying the server's JSON ``error`` message, so CLI users see
the same diagnostics the server logged.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.errors import ReproError
from repro.service.jobs import AdmissionError

DEFAULT_URL = "http://127.0.0.1:8642"


class ServiceClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, base_url: str = DEFAULT_URL,
                 timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None):
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers,
            method=method,
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            raise self._to_error(error) from None
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach sweep service at {self.base_url}: "
                f"{error.reason}"
            ) from None

    @staticmethod
    def _to_error(error: urllib.error.HTTPError) -> ReproError:
        try:
            payload = json.loads(error.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = {}
        message = payload.get("error") or f"HTTP {error.code}"
        if error.code == 429:
            return AdmissionError(
                payload.get("reason", "rejected"), message
            )
        return ReproError(message)

    def _json(self, method: str, path: str,
              payload: dict | None = None) -> dict:
        with self._request(method, path, payload) as response:
            return json.loads(response.read().decode("utf-8"))

    # -- surface -----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._json("GET", "/v1/ping").get("ok"))

    def stats(self) -> dict:
        return self._json("GET", "/v1/stats")

    def jobs(self) -> list[dict]:
        return self._json("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def submit(
        self,
        points: list[dict],
        tenant: str = "default",
        workers: int | None = None,
    ) -> dict:
        """Submit ``[{"app", "variant", "config"?}, ...]``; job dict."""
        payload: dict = {"points": points, "tenant": tenant}
        if workers is not None:
            payload["workers"] = workers
        return self._json("POST", "/v1/jobs", payload)

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/v1/jobs/{job_id}/cancel", {})

    def results(self, job_id: str, wait: bool = False):
        """Yield per-point result descriptors (NDJSON stream)."""
        suffix = "?wait=1" if wait else ""
        response = self._request(
            "GET", f"/v1/jobs/{job_id}/results{suffix}"
        )
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(self, job_id: str, poll_seconds: float = 0.5,
             timeout: float = 600.0) -> dict:
        """Poll until the job reaches a final state; the final dict."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] not in ("queued", "running"):
                return job
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"job {job_id!r} still {job['state']} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_seconds)
