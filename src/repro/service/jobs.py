"""Async job manager: admission control, bounded queue, tenant quotas.

A *job* is one journaled run plus lifecycle state. Submission is
durable-at-admission: :meth:`JobManager.submit` writes the run journal
header before returning, so an accepted job survives a service restart
(its journal is the work record; any worker can drain it). The manager
then runs jobs one at a time through a child process that forks the
drain workers — one running job keeps the admission story simple and
the box's cores belong to that job's workers.

Admission control is two gates, checked atomically at submit:

* **bounded queue** — at most ``max_queue`` jobs waiting; beyond that
  submissions are rejected with ``reason="queue_full"`` (HTTP 429
  upstream) rather than accepted into an unbounded backlog;
* **per-tenant quota** — at most ``tenant_quota`` queued+running jobs
  per tenant, so one tenant cannot occupy the whole queue
  (``reason="tenant_quota"``).

Cancellation: a queued job flips to ``cancelled`` without running; a
running job's child process gets SIGTERM, which tears down its drain
workers and exits with the resumable status — every point journaled
before the cancel is kept, and the run can be drained again later.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.cache import PersistentCache
from repro.engine.journal import load_run
from repro.errors import ReproError, SweepInterrupted
from repro.service.claims import DEFAULT_LEASE_SECONDS
from repro.service.runner import create_run, execute_run

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETE = "complete"
FAILED = "failed"
CANCELLED = "cancelled"
INTERRUPTED = "interrupted"

_FINAL_STATES = (COMPLETE, FAILED, CANCELLED, INTERRUPTED)

DEFAULT_MAX_QUEUE = 8
DEFAULT_TENANT_QUOTA = 4
DEFAULT_TENANT = "default"


class AdmissionError(ReproError):
    """A job submission was rejected at the door.

    ``reason`` is machine-readable: ``queue_full`` (the bounded run
    queue is at capacity) or ``tenant_quota`` (this tenant already has
    its quota of queued+running jobs).
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass
class Job:
    """One submitted run's lifecycle record."""

    job_id: str  # == the run id; the journal is the durable record
    tenant: str
    points: int
    workers: int
    state: str = QUEUED
    submitted: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    error: str = ""
    pid: int = 0
    cancel_requested: bool = False

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "points": self.points,
            "workers": self.workers,
            "state": self.state,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
        }


def _job_entry(
    cache_root: str, run_id: str, workers: int, lease_seconds: float
) -> None:
    """Child-process entry for one job (module-level: forkable)."""
    execute_run(
        cache_root, run_id, workers, lease_seconds, interruptible=True
    )


class JobManager:
    """The service's job table, queue, and dispatcher."""

    def __init__(
        self,
        cache_root: Path | str,
        max_queue: int = DEFAULT_MAX_QUEUE,
        tenant_quota: int = DEFAULT_TENANT_QUOTA,
        workers: int = 2,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        auto_start: bool = True,
    ) -> None:
        self.cache_root = Path(cache_root)
        self.max_queue = max_queue
        self.tenant_quota = tenant_quota
        self.workers = workers
        self.lease_seconds = lease_seconds
        self._jobs: dict[str, Job] = {}
        self._queue: deque[str] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stopping = False
        self._counters = {
            "admitted": 0,
            "rejected_queue": 0,
            "rejected_quota": 0,
            "queue_peak": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "interrupted": 0,
        }
        self._tenants: dict[str, dict] = {}
        self._dispatcher: threading.Thread | None = None
        if auto_start:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._dispatcher is not None and self._dispatcher.is_alive():
            return
        self._stopping = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="repro-job-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop dispatching; SIGTERM the running job, if any."""
        self._stopping = True
        self._wake.set()
        with self._lock:
            running = [
                job for job in self._jobs.values()
                if job.state == RUNNING and job.pid
            ]
        for job in running:
            try:
                os.kill(job.pid, signal.SIGTERM)
            except OSError:
                pass
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)

    # -- admission ---------------------------------------------------------

    def _tenant_load(self, tenant: str) -> int:
        return sum(
            1 for job in self._jobs.values()
            if job.tenant == tenant and job.state in (QUEUED, RUNNING)
        )

    def submit(
        self,
        points,
        tenant: str = DEFAULT_TENANT,
        workers: int | None = None,
    ) -> Job:
        """Admit a run; journals the header before returning.

        Raises :class:`AdmissionError` when a gate rejects. The journal
        write happens inside the admission lock — an admitted job is
        durable (its journal exists) by the time the caller sees it.
        """
        workers = workers or self.workers
        with self._lock:
            record = self._tenants.setdefault(
                tenant,
                {"admitted": 0, "rejected": 0, "completed": 0},
            )
            if self._tenant_load(tenant) >= self.tenant_quota:
                self._counters["rejected_quota"] += 1
                record["rejected"] += 1
                raise AdmissionError(
                    "tenant_quota",
                    f"tenant {tenant!r} already has "
                    f"{self.tenant_quota} queued or running jobs",
                )
            if len(self._queue) >= self.max_queue:
                self._counters["rejected_queue"] += 1
                record["rejected"] += 1
                raise AdmissionError(
                    "queue_full",
                    f"run queue is full ({self.max_queue} jobs waiting)",
                )
            run_id = create_run(self.cache_root, points, workers)
            job = Job(
                job_id=run_id,
                tenant=tenant,
                points=len(points),
                workers=workers,
                submitted=time.time(),
            )
            self._jobs[run_id] = job
            self._queue.append(run_id)
            self._counters["admitted"] += 1
            self._counters["queue_peak"] = max(
                self._counters["queue_peak"], len(self._queue)
            )
            record["admitted"] += 1
        self._wake.set()
        return job

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stopping:
            with self._lock:
                job_id = self._queue.popleft() if self._queue else None
            if job_id is None:
                self._wake.wait(0.2)
                self._wake.clear()
                continue
            self._run_one(job_id)

    def _run_one(self, job_id: str) -> None:
        job = self._jobs[job_id]
        with self._lock:
            if job.cancel_requested:
                job.state = CANCELLED
                job.finished = time.time()
                self._counters["cancelled"] += 1
                return
            job.state = RUNNING
            job.started = time.time()
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_job_entry,
            args=(str(self.cache_root), job_id, job.workers,
                  self.lease_seconds),
            name=f"repro-job-{job_id}",
        )
        process.start()
        with self._lock:
            job.pid = process.pid or 0
        process.join()
        with self._lock:
            job.finished = time.time()
            job.pid = 0
            code = process.exitcode
            if job.cancel_requested:
                job.state = CANCELLED
                self._counters["cancelled"] += 1
            elif code == 0:
                job.state = COMPLETE
                self._counters["completed"] += 1
                self._tenants[job.tenant]["completed"] += 1
            elif code == SweepInterrupted.EXIT_STATUS:
                job.state = INTERRUPTED
                self._counters["interrupted"] += 1
            else:
                job.state = FAILED
                job.error = f"job process exited with status {code}"
                self._counters["failed"] += 1

    # -- control -----------------------------------------------------------

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job (idempotent on final states)."""
        job = self.job(job_id)
        with self._lock:
            if job.state in _FINAL_STATES:
                return job
            job.cancel_requested = True
            if job.state == QUEUED:
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass  # the dispatcher just popped it
                else:
                    job.state = CANCELLED
                    job.finished = time.time()
                    self._counters["cancelled"] += 1
                    return job
            pid = job.pid
        if pid:
            try:
                os.kill(pid, signal.SIGTERM)
            except OSError:
                pass
        return job

    # -- reads -------------------------------------------------------------

    def job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ReproError(f"no job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda job: job.submitted
            )

    def status(self, job_id: str) -> dict:
        """One job's lifecycle plus live journal progress."""
        job = self.job(job_id)
        payload = job.as_dict()
        state = load_run(self.cache_root, job.job_id)
        payload["progress"] = {
            "done": len(state.done),
            "failed": len(state.failed),
            "unique_points": len(state.unique_keys),
            "workers": sorted(state.workers),
        }
        return payload

    def results(self, job_id: str) -> list[dict]:
        """Per-point result descriptors, in journal order."""
        return list(self.stream_results(job_id, wait=False))

    def stream_results(
        self, job_id: str, wait: bool = False, poll_seconds: float = 0.2
    ):
        """Yield per-point descriptors as they complete (journal order).

        Each item carries the point key and the journaled result
        digest; the payload itself lives in the content-addressed
        cache (``repro.service.runner.collect_results`` materialises
        it). With ``wait`` the generator follows the journal until the
        job reaches a final state.
        """
        job = self.job(job_id)
        cache = PersistentCache(self.cache_root)
        emitted: set = set()
        while True:
            state = load_run(self.cache_root, job.job_id)
            for key in state.unique_keys:
                if key in emitted or key not in state.done:
                    continue
                emitted.add(key)
                app, variant, digest = key
                yield {
                    "app": app,
                    "variant": variant,
                    "config_digest": digest,
                    "result_digest": state.done[key],
                    "cached": cache.load_result_payload(
                        app, variant, digest
                    ) is not None,
                }
            if not wait or job.state in _FINAL_STATES:
                return
            time.sleep(poll_seconds)

    def stats(self) -> dict:
        """Queue and admission telemetry (the schema 6 service block)."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "queue_depth": len(self._queue),
                **dict(self._counters),
                "states": states,
                "tenants": {
                    tenant: dict(record)
                    for tenant, record in sorted(self._tenants.items())
                },
            }
