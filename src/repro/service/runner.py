"""Multi-worker run orchestration: create, execute, collect.

The runner is what turns "a journaled point list" into "N worker
processes draining it": :func:`create_run` writes the journal header
(the durable admission record — a run exists the moment its points are
journaled, whoever ends up draining it), :func:`execute_run` forks the
workers and writes the completion footer once nothing is pending, and
:func:`collect_results` re-reads the journal plus the content-addressed
cache into the same ordered result list a serial
:meth:`Engine.characterize_many` call would return — re-verifying every
payload digest against the journal on the way, so a multi-worker run is
*provably* byte-identical to a single-worker one.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from pathlib import Path

from repro.engine import serialize
from repro.engine.cache import PersistentCache
from repro.engine.digest import result_payload_digest
from repro.engine.journal import (
    RunJournal,
    RunState,
    config_digest_of,
    load_run,
)
from repro.errors import SweepInterrupted, WorkloadError
from repro.service.claims import DEFAULT_LEASE_SECONDS


def create_run(
    cache_root: Path | str,
    points,
    workers: int = 2,
    run_id: str | None = None,
) -> str:
    """Journal a run header for ``points``; returns the run id.

    ``points`` is the ordered ``(app, variant, CoreConfig)`` request
    list (duplicates included). Nothing executes — the journal *is* the
    work queue, and any worker can attach to it afterwards.
    """
    journal = RunJournal.create(cache_root, points, jobs=workers,
                                run_id=run_id)
    journal.close()
    return journal.run_id


def _drain_entry(
    cache_root: str,
    run_id: str,
    worker_id: str,
    lease_seconds: float,
) -> None:
    """Worker-process entry point (module-level: picklable, forkable)."""
    from repro.service.worker import drain_run

    # Workers must die on SIGTERM so a cancelled job reclaims them;
    # never inherit a parent's graceful handler.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    drain_run(
        cache_root, run_id,
        worker_id=worker_id, lease_seconds=lease_seconds,
    )


def execute_run(
    cache_root: Path | str,
    run_id: str,
    workers: int = 2,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    interruptible: bool = False,
) -> RunState:
    """Drain a journaled run with ``workers`` processes; final state.

    Forks one process per worker (fork keeps the worker cheap and the
    entry picklable-free), waits for all of them, and appends the
    ``run_complete`` footer iff nothing is pending. With
    ``interruptible`` a SIGTERM tears the workers down and exits with
    :attr:`SweepInterrupted.EXIT_STATUS` — the journal keeps every
    completed point, so the run resumes exactly like an interrupted
    sweep (this is the job manager's cancel path).
    """
    if workers < 1:
        raise WorkloadError(f"need at least one worker, got {workers}")
    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(
            target=_drain_entry,
            args=(str(cache_root), run_id, f"worker-{index + 1}",
                  lease_seconds),
            name=f"repro-worker-{index + 1}",
        )
        for index in range(workers)
    ]
    if interruptible:
        def _stop(signum, frame):
            for process in processes:
                if process.is_alive():
                    process.terminate()
            # The journal already holds every completed point; exit
            # with the resumable status, exactly like a sweep SIGTERM.
            os._exit(SweepInterrupted.EXIT_STATUS)
        signal.signal(signal.SIGTERM, _stop)
    for process in processes:
        process.start()
    for process in processes:
        process.join()
    state = load_run(cache_root, run_id)
    if not state.pending_keys() and not state.complete:
        with RunJournal.attach(cache_root, run_id) as journal:
            journal.record_complete(len(state.failed))
        state = load_run(cache_root, run_id)
    return state


def run_job(
    cache_root: Path | str,
    points,
    workers: int = 2,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    run_id: str | None = None,
) -> RunState:
    """Create a run and drain it with ``workers`` processes."""
    run_id = create_run(cache_root, points, workers, run_id=run_id)
    return execute_run(cache_root, run_id, workers, lease_seconds)


def collect_results(cache_root: Path | str, run_id: str):
    """The run's ordered results, digest-verified against the journal.

    Returns ``list[AppCharacterisation]`` in the journaled request
    order (duplicates included), loading each payload from the
    content-addressed cache and re-verifying it against the journaled
    ``point_done`` digest — the same check :meth:`Engine.resume`
    applies, so the returned list is byte-identical (as canonical
    JSON) to what a serial sweep over the same points yields.
    """
    state = load_run(cache_root, run_id)
    if state.corrupt is not None:
        raise WorkloadError(
            f"cannot collect run {run_id!r}: {state.corrupt}"
        )
    cache = PersistentCache(cache_root)
    results = []
    for app, variant, payload in state.points:
        digest = config_digest_of(payload)
        key = (app, variant, digest)
        expected = state.done.get(key)
        if expected is None:
            reason = state.failed.get(key, "never completed")
            raise WorkloadError(
                f"run {run_id!r} point {app}/{variant}/"
                f"{digest[:12]} has no result ({reason})"
            )
        stored = cache.load_result_payload(app, variant, digest)
        if stored is None:
            raise WorkloadError(
                f"run {run_id!r} point {app}/{variant}/{digest[:12]} "
                f"journaled done but its cache entry is gone"
            )
        actual = result_payload_digest(stored)
        if actual != expected:
            raise WorkloadError(
                f"run {run_id!r} point {app}/{variant}/{digest[:12]} "
                f"cache payload digest {actual[:12]} != journaled "
                f"{expected[:12]}"
            )
        results.append(serialize.characterisation_from_dict(stored))
    return results
