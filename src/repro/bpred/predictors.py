"""Pluggable branch-direction predictors.

The paper's characterisation (§III) pins BioPerf's mispredictions on
value-dependent ``max`` branches that defeat *any* history-based
scheme. This module makes that claim testable: a common
:class:`DirectionPredictor` interface, a registry keyed by
:class:`~repro.uarch.config.PredictorSpec` kind names, and the family
of schemes the branch-prediction literature would reach for first:

=============  ======================================================
kind           scheme
=============  ======================================================
``taken``      static predict-taken (no state)
``not_taken``  static predict-not-taken (no state)
``bimodal``    PC-indexed 2-bit saturating counters
``gshare``     2-bit counters indexed by PC xor global history
``local``      two-level: per-PC history selecting a pattern table
``tournament`` bimodal + gshare with a 2-bit chooser (Alpha 21264)
``perceptron`` hashed perceptrons over global history (Jiménez & Lin)
=============  ======================================================

``gshare`` and ``bimodal`` are the historical residents of
:mod:`repro.uarch.branch_predictor`, re-registered here behind the
interface; the core's columnar hot loop still inlines the default
gshare, and the golden-equality suite pins every other kind's columnar
route to the object reference path.

Every implementation keeps the same statistics contract —
``predictions`` / ``mispredictions`` counters, a ``misprediction_rate``
property, and ``reset_stats()`` for SMARTS-style warm-up — so a
:class:`~repro.uarch.core.Core` or the replay harness can swap schemes
freely.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.uarch.branch_predictor import BimodalPredictor, GsharePredictor
from repro.uarch.config import (
    PREDICTOR_KINDS,
    PredictorConfig,
    PredictorSpec,
)


@runtime_checkable
class DirectionPredictor(Protocol):
    """What the core model and the replay harness require of a scheme."""

    predictions: int
    mispredictions: int

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True when it was mispredicted."""

    def reset_stats(self) -> None:
        """Clear counters but keep the learned state (for warm-up)."""


class _StatsBase:
    """Shared statistics contract of the predictors defined here."""

    def __init__(self) -> None:
        self.predictions = 0
        self.mispredictions = 0

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        self.predictions = 0
        self.mispredictions = 0

    def _record(self, mispredicted: bool) -> bool:
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1
        return mispredicted


class StaticPredictor(_StatsBase):
    """Predict a fixed direction for every branch (no learned state)."""

    def __init__(self, taken: bool) -> None:
        super().__init__()
        self._taken = bool(taken)

    def predict(self, pc: int) -> bool:
        return self._taken

    def update(self, pc: int, taken: bool) -> bool:
        return self._record(self._taken != bool(taken))


class TwoLevelLocalPredictor(_StatsBase):
    """Two-level local predictor (Yeh & Patt PAg).

    The first level keeps a per-PC history of the branch's own last
    ``history_bits`` outcomes; the second level is a shared pattern
    table of 2-bit counters indexed by that history. Captures periodic
    per-branch patterns (loop trip counts) that global history misses —
    and still fails on the value-dependent DP branches, which carry no
    pattern at all.
    """

    def __init__(self, table_bits: int, history_bits: int) -> None:
        super().__init__()
        if table_bits < 1 or history_bits < 0:
            raise SimulationError("bad local-predictor geometry")
        self._pc_mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._histories = [0] * (1 << table_bits)
        self._pattern = [1] * (1 << history_bits)  # weakly not-taken

    def predict(self, pc: int) -> bool:
        history = self._histories[pc & self._pc_mask]
        return self._pattern[history] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        slot = pc & self._pc_mask
        history = self._histories[slot]
        counter = self._pattern[history]
        if taken:
            if counter < 3:
                self._pattern[history] = counter + 1
            self._histories[slot] = ((history << 1) | 1) & self._history_mask
        else:
            if counter > 0:
                self._pattern[history] = counter - 1
            self._histories[slot] = (history << 1) & self._history_mask
        return self._record((counter >= 2) != bool(taken))


class TournamentPredictor(_StatsBase):
    """Bimodal + gshare with a per-PC 2-bit chooser (21264-style).

    The chooser trains toward whichever component was right when they
    disagree; both components always train on the outcome.
    """

    def __init__(self, table_bits: int, history_bits: int) -> None:
        super().__init__()
        self._bimodal = BimodalPredictor(table_bits)
        self._gshare = GsharePredictor(
            PredictorConfig(table_bits=table_bits, history_bits=history_bits)
        )
        self._chooser = [2] * (1 << table_bits)  # weakly prefer gshare
        self._pc_mask = (1 << table_bits) - 1

    def predict(self, pc: int) -> bool:
        if self._chooser[pc & self._pc_mask] >= 2:
            return self._gshare.predict(pc)
        return self._bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        bimodal_prediction = self._bimodal.predict(pc)
        gshare_prediction = self._gshare.predict(pc)
        slot = pc & self._pc_mask
        chosen = (
            gshare_prediction
            if self._chooser[slot] >= 2
            else bimodal_prediction
        )
        self._bimodal.update(pc, taken)
        self._gshare.update(pc, taken)
        taken = bool(taken)
        if bimodal_prediction != gshare_prediction:
            if gshare_prediction == taken:
                if self._chooser[slot] < 3:
                    self._chooser[slot] += 1
            elif self._chooser[slot] > 0:
                self._chooser[slot] -= 1
        return self._record(chosen != taken)


#: Perceptron weights saturate at the classic signed-8-bit range.
_WEIGHT_MIN, _WEIGHT_MAX = -128, 127


class PerceptronPredictor(_StatsBase):
    """Hashed perceptron over global history (Jiménez & Lin 2001).

    Each PC hashes to a weight vector (bias + one weight per history
    bit); the prediction is the sign of the dot product with the
    global history (outcomes as +/-1). Training bumps the weights
    toward the outcome whenever the prediction was wrong *or* the
    magnitude was below the threshold. Linearly-separable history
    correlations of any length fit; value-dependent branches do not —
    which is the point of including it in the lab.
    """

    def __init__(
        self, table_bits: int, history_bits: int, threshold: int = 0
    ) -> None:
        super().__init__()
        if table_bits < 1 or history_bits < 0:
            raise SimulationError("bad perceptron geometry")
        self._pc_mask = (1 << table_bits) - 1
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        # 0 selects the classic capacity-matched training threshold.
        self.threshold = threshold or int(1.93 * history_bits + 14)
        self._weights = [
            [0] * (history_bits + 1) for _ in range(1 << table_bits)
        ]
        self._history = 0

    def _output(self, pc: int) -> int:
        weights = self._weights[pc & self._pc_mask]
        total = weights[0]
        history = self._history
        for k in range(1, self._history_bits + 1):
            if (history >> (k - 1)) & 1:
                total += weights[k]
            else:
                total -= weights[k]
        return total

    def predict(self, pc: int) -> bool:
        return self._output(pc) >= 0

    def update(self, pc: int, taken: bool) -> bool:
        taken = bool(taken)
        total = self._output(pc)
        prediction = total >= 0
        if prediction != taken or abs(total) <= self.threshold:
            weights = self._weights[pc & self._pc_mask]
            step = 1 if taken else -1
            value = weights[0] + step
            weights[0] = min(_WEIGHT_MAX, max(_WEIGHT_MIN, value))
            history = self._history
            for k in range(1, self._history_bits + 1):
                agree = step if (history >> (k - 1)) & 1 else -step
                value = weights[k] + agree
                weights[k] = min(_WEIGHT_MAX, max(_WEIGHT_MIN, value))
        self._history = (
            (self._history << 1) | (1 if taken else 0)
        ) & self._history_mask
        return self._record(prediction != taken)


# -- registry ----------------------------------------------------------------

_REGISTRY: dict[str, Callable[[PredictorSpec], DirectionPredictor]] = {}


def register_predictor(kind: str):
    """Class decorator registering a factory for ``kind``.

    The kind must be declared in
    :data:`repro.uarch.config.PREDICTOR_KINDS` — specs validate their
    kind at construction, so an unlisted registration could never be
    reached through a :class:`PredictorSpec`.
    """
    if kind not in PREDICTOR_KINDS:
        raise SimulationError(
            f"kind {kind!r} is not declared in PREDICTOR_KINDS"
        )

    def decorate(factory: Callable[[PredictorSpec], DirectionPredictor]):
        if kind in _REGISTRY:
            raise SimulationError(f"predictor kind {kind!r} registered twice")
        _REGISTRY[kind] = factory
        return factory

    return decorate


def predictor_kinds() -> tuple[str, ...]:
    """Registered kind names, in the declaration order of the spec."""
    return tuple(kind for kind in PREDICTOR_KINDS if kind in _REGISTRY)


def make_predictor(
    spec: PredictorSpec | PredictorConfig | None = None,
) -> DirectionPredictor:
    """Instantiate the predictor a spec describes.

    A legacy :class:`PredictorConfig` (bare gshare geometry) is
    accepted and promoted to a gshare spec.
    """
    if spec is None:
        spec = PredictorSpec()
    elif isinstance(spec, PredictorConfig):
        spec = PredictorSpec(
            kind="gshare",
            table_bits=spec.table_bits,
            history_bits=spec.history_bits,
        )
    factory = _REGISTRY.get(spec.kind)
    if factory is None:
        raise SimulationError(
            f"no predictor registered for kind {spec.kind!r}; "
            f"have {predictor_kinds()}"
        )
    return factory(spec)


register_predictor("taken")(lambda spec: StaticPredictor(True))
register_predictor("not_taken")(lambda spec: StaticPredictor(False))
register_predictor("bimodal")(
    lambda spec: BimodalPredictor(spec.table_bits)
)
register_predictor("gshare")(
    lambda spec: GsharePredictor(spec.gshare_geometry())
)
register_predictor("local")(
    lambda spec: TwoLevelLocalPredictor(spec.table_bits, spec.history_bits)
)
register_predictor("tournament")(
    lambda spec: TournamentPredictor(spec.table_bits, spec.history_bits)
)
register_predictor("perceptron")(
    lambda spec: PerceptronPredictor(
        spec.table_bits, spec.history_bits, spec.threshold
    )
)
