"""The branch-prediction laboratory: cached replay over app kernels.

Glue between the abstract machinery (:mod:`repro.bpred.replay`,
:mod:`repro.bpred.characterize`) and the repository's workloads:

* :func:`stream_for` extracts (and memoises) the conditional-branch
  stream of an app/variant kernel trace, riding on the engine's
  persistent trace store through
  :func:`repro.perf.characterize.kernel_trace`;
* :func:`cached_replay` / :func:`cached_characterisation` persist their
  results through :class:`repro.engine.cache.PersistentCache` result
  slots, addressed by a canonical digest of the
  :class:`~repro.uarch.config.PredictorSpec` — the same
  content-addressing discipline ``repro.engine`` applies to core
  configs, with the same corruption handling (malformed entries are
  evicted and recomputed, never raised);
* :func:`kernel_program` reconstructs the compiled kernel
  :class:`~repro.isa.program.Program` an app's trace came from, so
  ranked H2P branches resolve to labels and source lines.

This module imports the perf layer (which imports the core), so the
``repro.bpred`` package does **not** import it eagerly — the CLI and
experiments pull it in on demand.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.bpred.characterize import (
    BranchProfile,
    BranchSite,
    StreamCharacterisation,
    attribute_to_program,
    characterize_stream,
)
from repro.bpred.replay import BranchStream, ReplayResult, branch_stream, replay
from repro.errors import WorkloadError
from repro.isa.program import Program
from repro.uarch.config import _GSHARE_LIKE, PredictorSpec

#: Result-slot variant suffixes. "~" cannot appear in a code-variant
#: name (precedent: the engine's "~background" trace slot), so these
#: never collide with real simulation results.
_REPLAY_SLOT = "~bpred"
_PROFILE_SLOT = "~bprof"

_stream_cache: dict[tuple[str, str], BranchStream] = {}


def spec_digest(spec: PredictorSpec) -> str:
    """Canonical content digest of a predictor spec (cache address)."""
    payload = json.dumps(
        {"type": "PredictorSpec", "spec": asdict(spec)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def spec_for(
    kind: str, table_bits: int = 12, history_bits: int = 10
) -> PredictorSpec:
    """A valid spec for ``kind`` at roughly the requested geometry.

    Sweeps vary geometry across kinds; gshare-like schemes cannot use
    more history bits than index bits, so the history is clamped for
    them rather than making the whole sweep point invalid.
    """
    if kind in _GSHARE_LIKE and history_bits > table_bits:
        history_bits = table_bits
    return PredictorSpec(
        kind=kind, table_bits=table_bits, history_bits=history_bits
    )


def stream_for(app: str, variant: str = "baseline") -> BranchStream:
    """The conditional-branch stream of one app/variant kernel trace.

    The underlying trace comes from the engine's persistent store (or
    is regenerated and stored); the extracted stream is memoised per
    process — it is a cheap single pass, so it needs no disk slot of
    its own.
    """
    key = (app, variant)
    if key not in _stream_cache:
        from repro.perf.characterize import kernel_trace

        _stream_cache[key] = branch_stream(kernel_trace(app, variant))
    return _stream_cache[key]


def clear_stream_cache() -> None:
    """Drop the in-memory stream memo (test isolation)."""
    _stream_cache.clear()


def _replay_from_payload(
    payload: dict, spec: PredictorSpec
) -> ReplayResult:
    stored = payload["spec"]
    if PredictorSpec(
        kind=str(stored["kind"]),
        **{k: int(v) for k, v in stored.items() if k != "kind"},
    ) != spec:
        raise ValueError("cached replay spec mismatch")
    return ReplayResult(
        spec=spec,
        branches=int(payload["branches"]),
        mispredictions=int(payload["mispredictions"]),
        instructions=int(payload["instructions"]),
    )


def cached_replay(
    app: str, variant: str, spec: PredictorSpec | str
) -> ReplayResult:
    """Replay one predictor over one kernel stream, persistently cached.

    The result slot is addressed by (app, ``variant~bpred``,
    spec digest) — any simulation-source change re-addresses it via the
    source digest baked into the cache path, exactly like engine
    results.
    """
    if isinstance(spec, str):
        spec = PredictorSpec(kind=spec)
    from repro.engine.cache import active_cache

    cache = active_cache()
    digest = spec_digest(spec)
    slot = f"{variant}{_REPLAY_SLOT}"
    payload = cache.load_result_payload(app, slot, digest)
    if payload is not None:
        try:
            return _replay_from_payload(payload, spec)
        except (KeyError, TypeError, ValueError):
            cache.evict_result(app, slot, digest)
    result = replay(stream_for(app, variant), spec)
    cache.store_result_payload(app, slot, digest, result.to_payload())
    return result


def compare(
    app: str,
    variant: str = "baseline",
    specs: tuple[PredictorSpec | str, ...] | list[PredictorSpec | str] = (),
) -> list[ReplayResult]:
    """Cached replay of several predictors over one stream.

    With no ``specs``, every registered kind at default geometry.
    """
    if not specs:
        from repro.bpred.predictors import predictor_kinds

        specs = predictor_kinds()
    return [cached_replay(app, variant, spec) for spec in specs]


def _characterisation_from_payload(
    payload: dict, spec: PredictorSpec
) -> StreamCharacterisation:
    stored = payload["spec"]
    if PredictorSpec(
        kind=str(stored["kind"]),
        **{k: int(v) for k, v in stored.items() if k != "kind"},
    ) != spec:
        raise ValueError("cached characterisation spec mismatch")
    instructions = int(payload["instructions"])
    return StreamCharacterisation(
        spec=spec,
        branches=tuple(
            BranchProfile(
                pc=int(entry["pc"]),
                executions=int(entry["executions"]),
                taken=int(entry["taken"]),
                transitions=int(entry["transitions"]),
                mispredictions=int(entry["mispredictions"]),
                instructions=instructions,
            )
            for entry in payload["branches"]
        ),
        instructions=instructions,
        total_mispredictions=int(payload["total_mispredictions"]),
    )


def cached_characterisation(
    app: str,
    variant: str = "baseline",
    spec: PredictorSpec | str = "gshare",
) -> StreamCharacterisation:
    """Per-branch profile of one kernel stream, persistently cached."""
    if isinstance(spec, str):
        spec = PredictorSpec(kind=spec)
    from repro.engine.cache import active_cache

    cache = active_cache()
    digest = spec_digest(spec)
    slot = f"{variant}{_PROFILE_SLOT}"
    payload = cache.load_result_payload(app, slot, digest)
    if payload is not None:
        try:
            return _characterisation_from_payload(payload, spec)
        except (KeyError, TypeError, ValueError):
            cache.evict_result(app, slot, digest)
    result = characterize_stream(stream_for(app, variant), spec)
    cache.store_result_payload(app, slot, digest, result.to_payload())
    return result


def kernel_program(app: str, variant: str = "baseline") -> Program:
    """The compiled kernel program behind an app's trace.

    Reconstructs exactly the config
    :func:`repro.perf.characterize.kernel_trace` traces with, so every
    pc in the trace indexes this program. The acceptance tests assert
    that correspondence (every conditional-branch pc resolves to a
    ``bc``) for all four apps.
    """
    from repro.bio.scoring import BLOSUM62, GapPenalties
    from repro.kernels import forward_pass, gapped_extend, smith_waterman, viterbi
    from repro.kernels.forward_pass import FpConfig
    from repro.kernels.gapped_extend import GappedConfig
    from repro.kernels.smith_waterman import SwConfig
    from repro.kernels.viterbi import ViterbiConfig
    from repro.perf.characterize import GAPS, _kernel_inputs

    alphabet_size = len(BLOSUM62.alphabet)
    if app == "fasta":
        config = SwConfig(
            alphabet_size=alphabet_size,
            open_cost=GAPS.open_ + GAPS.extend,
            extend_cost=GAPS.extend,
        )
        return smith_waterman.HARNESS.compiled(variant, config).program
    if app == "clustalw":
        config = FpConfig(
            alphabet_size=alphabet_size,
            open_cost=GAPS.open_ + GAPS.extend,
            extend_cost=GAPS.extend,
        )
        return forward_pass.HARNESS.compiled(variant, config).program
    if app == "blast":
        gaps = GapPenalties(11, 1)
        config = GappedConfig(
            alphabet_size=alphabet_size,
            open_cost=gaps.open_ + gaps.extend,
            extend_cost=gaps.extend,
            band=12,
            x_drop=30,
        )
        return gapped_extend.HARNESS.compiled(variant, config).program
    if app == "hmmer":
        model, _ = _kernel_inputs("hmmer")
        config = ViterbiConfig(
            length=model.length, alphabet_size=len(model.alphabet)
        )
        return viterbi.HARNESS.compiled(variant, config).program
    raise WorkloadError(f"unknown application {app!r}")


def ranked_sites(
    app: str,
    variant: str = "baseline",
    spec: PredictorSpec | str = "gshare",
    limit: int | None = 10,
) -> list[BranchSite]:
    """H2P branches of one kernel, attributed to kernel source lines."""
    characterisation = cached_characterisation(app, variant, spec)
    return attribute_to_program(
        characterisation, kernel_program(app, variant), limit=limit
    )
