"""Trace-driven branch-predictor replay.

A full :meth:`Core.simulate <repro.uarch.core.Core.simulate>` pass pays
for the scoreboard, the cache and the BTAC on every event just to learn
how one direction predictor would fare. Replay skips all of that: the
conditional-branch stream — (pc, taken) pairs — is extracted from a
columnar trace in one pass over the flags column, and any number of
predictors are then driven over the packed stream directly.

Because :class:`~repro.uarch.core.Core` counts a direction
misprediction exactly when ``predictor.update(pc, taken)`` says so, a
replay over the same trace with the same spec reproduces the core's
``direction_mispredictions`` *exactly* — the acceptance tests assert
this equality on every app. That makes replay a trustworthy proxy at a
fraction of the cost (the stream is typically ~10-20% of the events and
the loop does no timing work).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.trace import F_COND, F_TAKEN, Trace, TraceEvent
from repro.bpred.predictors import DirectionPredictor, make_predictor
from repro.uarch.config import PredictorSpec


@dataclass(frozen=True)
class BranchStream:
    """Packed conditional-branch stream of one trace.

    ``pcs``/``taken`` are parallel columns over the conditional
    branches only; ``instructions`` remembers the source trace's full
    event count so MPKI stays anchored to committed instructions, not
    branches.
    """

    pcs: array
    taken: array
    instructions: int

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self):
        return zip(self.pcs, self.taken)

    @property
    def taken_count(self) -> int:
        return sum(self.taken)

    def to_payload(self) -> dict:
        """JSON-serialisable form (tests / ad-hoc tooling)."""
        return {
            "instructions": self.instructions,
            "pcs": self.pcs.tolist(),
            "taken": self.taken.tolist(),
        }


def branch_stream(trace) -> BranchStream:
    """Extract the conditional-branch stream from a trace.

    Accepts a columnar :class:`Trace` (filtered in one pass over the
    packed flags column), an object-form event list, or any iterator of
    trace segments — e.g. the v3 tracestore's lazy reader or the
    segmented interpreter/synthetic generators — which is consumed in a
    single bounded-memory pass. The packed stream is identical however
    the same events arrive.
    """
    pcs = array("q")
    taken = array("B")
    instructions = 0
    if isinstance(trace, Trace):
        chunks = [trace]
    elif isinstance(trace, list) and (
        not trace or isinstance(trace[0], TraceEvent)
    ):
        chunks = [trace]  # object-form event list (possibly empty)
    else:
        chunks = trace  # iterator (or list) of segments
    for chunk in chunks:
        if isinstance(chunk, Trace):
            start, stop = chunk._bounds()
            flags_col = chunk.flags
            pc_col = chunk.pc
            for index in range(start, stop):
                flags = flags_col[index]
                if flags & F_COND:
                    pcs.append(pc_col[index])
                    taken.append(1 if flags & F_TAKEN else 0)
            instructions += stop - start
        else:
            for event in chunk:
                if event.is_conditional:
                    pcs.append(event.pc)
                    taken.append(1 if event.taken else 0)
            instructions += len(chunk)
    return BranchStream(pcs=pcs, taken=taken, instructions=instructions)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of driving one predictor over one branch stream."""

    spec: PredictorSpec
    branches: int
    mispredictions: int
    instructions: int

    @property
    def misprediction_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.mispredictions / self.branches

    @property
    def mpki(self) -> float:
        """Direction mispredictions per 1000 committed instructions."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    def to_payload(self) -> dict:
        from dataclasses import asdict

        return {
            "spec": asdict(self.spec),
            "branches": self.branches,
            "mispredictions": self.mispredictions,
            "instructions": self.instructions,
            "misprediction_rate": self.misprediction_rate,
            "mpki": self.mpki,
        }


def replay(
    stream: BranchStream,
    spec: PredictorSpec | str,
    predictor: DirectionPredictor | None = None,
) -> ReplayResult:
    """Drive one predictor over ``stream`` and count mispredictions.

    ``spec`` may be a bare kind name (default geometry). Passing an
    already-constructed ``predictor`` replays with its current learned
    state — how the characterisation layer reuses a warmed scheme.
    """
    if isinstance(spec, str):
        spec = PredictorSpec(kind=spec)
    if predictor is None:
        predictor = make_predictor(spec)
    update = predictor.update
    mispredictions = 0
    for pc, taken in zip(stream.pcs, stream.taken):
        if update(pc, taken == 1):
            mispredictions += 1
    return ReplayResult(
        spec=spec,
        branches=len(stream.pcs),
        mispredictions=mispredictions,
        instructions=stream.instructions,
    )


def replay_many(
    stream: BranchStream,
    specs: list[PredictorSpec | str] | tuple[PredictorSpec | str, ...],
) -> list[ReplayResult]:
    """Replay several predictors over one stream (fresh state each)."""
    if not specs:
        raise SimulationError("replay_many needs at least one spec")
    return [replay(stream, spec) for spec in specs]
