"""Per-branch predictability characterisation.

The paper's argument (§III, §VI) is *per-branch*: a handful of
value-dependent DP-recurrence branches carry most of the misprediction
cost, and no history-based scheme fixes them. This module computes the
statistics that make the argument quantitative:

* **taken rate** — long-run bias of the branch;
* **outcome entropy** — Shannon entropy of the direction as a Bernoulli
  variable (1.0 bit = coin flip, 0.0 = perfectly biased);
* **transition rate** — how often the direction flips between
  consecutive executions (periodic branches flip predictably, random
  ones flip ~half the time);
* **misprediction share / MPKI contribution** — measured by replaying a
  reference predictor (gshare by default) and attributing each miss to
  its pc.

H2P ("hard to predict") branches are those with high entropy *and* high
dynamic weight — the ranking :func:`StreamCharacterisation.top`
returns. :func:`attribute_to_program` maps the ranked pcs back to the
compiled kernel's labels and rendered instructions, which is where the
``max``/``isel`` story becomes visible in a report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bpred.predictors import make_predictor
from repro.bpred.replay import BranchStream
from repro.errors import SimulationError
from repro.isa.instructions import Op
from repro.isa.program import Program
from repro.uarch.config import PredictorSpec


def outcome_entropy(taken_rate: float) -> float:
    """Binary Shannon entropy (bits) of a branch's direction."""
    p = taken_rate
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


@dataclass(frozen=True)
class BranchProfile:
    """Predictability statistics of one static branch (one pc)."""

    pc: int
    executions: int
    taken: int
    transitions: int
    mispredictions: int
    instructions: int

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def entropy(self) -> float:
        return outcome_entropy(self.taken_rate)

    @property
    def transition_rate(self) -> float:
        """Direction flips per execution pair (0 = steady, ~0.5 = noisy)."""
        if self.executions <= 1:
            return 0.0
        return self.transitions / (self.executions - 1)

    @property
    def misprediction_rate(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.mispredictions / self.executions

    @property
    def mpki(self) -> float:
        """This branch's mispredictions per 1000 committed instructions."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    def to_payload(self) -> dict:
        return {
            "pc": self.pc,
            "executions": self.executions,
            "taken": self.taken,
            "transitions": self.transitions,
            "mispredictions": self.mispredictions,
            "taken_rate": self.taken_rate,
            "entropy": self.entropy,
            "transition_rate": self.transition_rate,
            "misprediction_rate": self.misprediction_rate,
            "mpki": self.mpki,
        }


@dataclass(frozen=True)
class StreamCharacterisation:
    """All static branches of one stream, ranked hardest-first."""

    spec: PredictorSpec
    branches: tuple[BranchProfile, ...]
    instructions: int
    total_mispredictions: int

    def top(self, n: int = 5) -> tuple[BranchProfile, ...]:
        """The ``n`` branches contributing the most mispredictions."""
        return self.branches[:n]

    def coverage(self, n: int = 5) -> float:
        """Share of all mispredictions the top ``n`` branches explain."""
        if self.total_mispredictions == 0:
            return 0.0
        covered = sum(p.mispredictions for p in self.branches[:n])
        return covered / self.total_mispredictions

    @property
    def mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.total_mispredictions / self.instructions

    def to_payload(self) -> dict:
        from dataclasses import asdict

        return {
            "spec": asdict(self.spec),
            "instructions": self.instructions,
            "total_mispredictions": self.total_mispredictions,
            "mpki": self.mpki,
            "branches": [p.to_payload() for p in self.branches],
        }


def characterize_stream(
    stream: BranchStream,
    spec: PredictorSpec | str = "gshare",
) -> StreamCharacterisation:
    """Profile every static branch of ``stream``.

    One replay pass over the stream accumulates per-pc execution,
    taken, transition and misprediction counts under the reference
    predictor; the result ranks branches by misprediction count (the
    H2P ordering), breaking ties by pc for determinism.
    """
    if isinstance(spec, str):
        spec = PredictorSpec(kind=spec)
    predictor = make_predictor(spec)
    update = predictor.update

    executions: dict[int, int] = {}
    taken_counts: dict[int, int] = {}
    transitions: dict[int, int] = {}
    mispredictions: dict[int, int] = {}
    last_outcome: dict[int, int] = {}

    for pc, taken in zip(stream.pcs, stream.taken):
        executions[pc] = executions.get(pc, 0) + 1
        if taken:
            taken_counts[pc] = taken_counts.get(pc, 0) + 1
        previous = last_outcome.get(pc)
        if previous is not None and previous != taken:
            transitions[pc] = transitions.get(pc, 0) + 1
        last_outcome[pc] = taken
        if update(pc, taken == 1):
            mispredictions[pc] = mispredictions.get(pc, 0) + 1

    profiles = [
        BranchProfile(
            pc=pc,
            executions=count,
            taken=taken_counts.get(pc, 0),
            transitions=transitions.get(pc, 0),
            mispredictions=mispredictions.get(pc, 0),
            instructions=stream.instructions,
        )
        for pc, count in executions.items()
    ]
    profiles.sort(key=lambda p: (-p.mispredictions, -p.executions, p.pc))
    return StreamCharacterisation(
        spec=spec,
        branches=tuple(profiles),
        instructions=stream.instructions,
        total_mispredictions=sum(mispredictions.values()),
    )


@dataclass(frozen=True)
class BranchSite:
    """A profiled branch attributed to its kernel source line."""

    profile: BranchProfile
    label: str
    source: str

    @property
    def location(self) -> str:
        return f"{self.label}+{self.profile.pc}" if self.label else str(
            self.profile.pc
        )

    def to_payload(self) -> dict:
        payload = self.profile.to_payload()
        payload["label"] = self.label
        payload["source"] = self.source
        return payload


def attribute_to_program(
    characterisation: StreamCharacterisation,
    program: Program,
    limit: int | None = None,
) -> list[BranchSite]:
    """Map ranked branch pcs back to the compiled program.

    Each pc must name a conditional branch (``bc``) in ``program`` —
    anything else means the stream and the program disagree, which is
    a hard error, not a cosmetic one. The label is the nearest program
    label at or before the pc (the compiled basic block the branch
    belongs to).
    """
    label_at: dict[int, str] = {}
    for name, index in sorted(program.labels.items(), key=lambda kv: kv[1]):
        label_at[index] = name
    sites: list[BranchSite] = []
    ranked = characterisation.branches
    if limit is not None:
        ranked = ranked[:limit]
    for profile in ranked:
        pc = profile.pc
        if not 0 <= pc < len(program):
            raise SimulationError(
                f"branch pc {pc} outside program of {len(program)} "
                "instructions — trace/program mismatch"
            )
        instruction = program[pc]
        if instruction.op is not Op.BC:
            raise SimulationError(
                f"pc {pc} is {instruction.op.value!r}, not a conditional "
                "branch — trace/program mismatch"
            )
        label = ""
        for index in range(pc, -1, -1):
            if index in label_at:
                label = label_at[index]
                break
        sites.append(
            BranchSite(
                profile=profile,
                label=label,
                source=instruction.render(),
            )
        )
    return sites
