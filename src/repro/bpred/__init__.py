"""Branch-prediction laboratory.

Pluggable direction predictors behind a registry
(:mod:`repro.bpred.predictors`), a trace-driven replay harness that
evaluates any scheme on the conditional-branch stream alone
(:mod:`repro.bpred.replay`), and per-branch predictability
characterisation ranking the hard-to-predict branches and attributing
them to kernel source lines (:mod:`repro.bpred.characterize`).

:mod:`repro.bpred.lab` wires these to the repository's workloads and
the engine's persistent cache; it imports the perf/uarch stack, so it
is *not* imported here — the CLI (``repro bpred``) and the
``ext_bpred`` experiment load it on demand.
"""

from repro.bpred.characterize import (
    BranchProfile,
    BranchSite,
    StreamCharacterisation,
    attribute_to_program,
    characterize_stream,
    outcome_entropy,
)
from repro.bpred.predictors import (
    DirectionPredictor,
    PerceptronPredictor,
    StaticPredictor,
    TournamentPredictor,
    TwoLevelLocalPredictor,
    make_predictor,
    predictor_kinds,
    register_predictor,
)
from repro.bpred.replay import (
    BranchStream,
    ReplayResult,
    branch_stream,
    replay,
    replay_many,
)

__all__ = [
    "BranchProfile",
    "BranchSite",
    "StreamCharacterisation",
    "attribute_to_program",
    "characterize_stream",
    "outcome_entropy",
    "DirectionPredictor",
    "PerceptronPredictor",
    "StaticPredictor",
    "TournamentPredictor",
    "TwoLevelLocalPredictor",
    "make_predictor",
    "predictor_kinds",
    "register_predictor",
    "BranchStream",
    "ReplayResult",
    "branch_stream",
    "replay",
    "replay_many",
]
