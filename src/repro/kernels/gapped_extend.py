"""The ``SEMI_G_ALIGN_EX`` kernel: Blast's gapped extension.

A banded semi-global affine-gap DP with X-drop pruning — the dynamic
programming that Blast's gapped extension performs around a seed
(§II/§III). Considerably more control flow than the other kernels
("the increased complexity of the code", §VI-A):

============ ===========================================  =============
site         meaning                                      shape
============ ===========================================  =============
e_max        ``E = max(E - Ws, Vleft - Wg - Ws)``         register
f_max        ``F = max(F - Ws, Vup - Wg - Ws)``           register
v_e          ``V = max(G, E)``                            register
v_f          ``V = max(V, F)``                            register
best         running best-cell score                      register
lo_clamp     ``lo = max(1, i - band)``                    register (max)
hi_clamp     ``if (hi > n) hi = n``                       min shape
border_clip  kill the column-0 border beyond the band     if-then const
vleft_clip   kill V(i, lo-1) outside the band             if-then const
xdrop_prune  ``if (V < best - X) V = -inf``               if-then const
edge_clear   clear stale cells beyond the band edge       conditional store
============ ===========================================  =============

Hand insertion (:data:`HAND_SITES`) converted only the four obvious DP
``max`` statements; it missed ``best`` and everything in the banding/
pruning scaffolding. Compiler if-conversion finds ``best`` and
``lo_clamp`` in max style, and additionally the min/clip/prune hammocks
in isel style — which is why compiler-generated code wins for Blast in
Figure 3 and why "there are other predicated opportunities than max
functionality" there.

Semantics: validated against :func:`banded_xdrop_reference`; in the
wide-band / huge-X limit the score coincides with the best
prefix-anchored extension score (and is bounded by full
Smith–Waterman), which the tests check against
:func:`repro.bio.banded.xdrop_extend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence as SequenceABC

from repro.bio.scoring import GapPenalties, SubstitutionMatrix
from repro.bio.sequence import Sequence
from repro.compiler.ir import BinOp, Function
from repro.isa.trace import Trace, TraceEvent
from repro.kernels.builder import Emitter, const, reg
from repro.kernels.runtime import KERNEL_NEG_INF, KernelHarness

#: The DP max statements a programmer converts by inspection. Blast's
#: extension code is the most convoluted of the four kernels, and the
#: paper notes hand insertion found "less obvious places" hard: the
#: F-recurrence max (interleaved with the row rotation) and everything
#: in the banding scaffolding were missed.
HAND_SITES = frozenset({"e_max", "v_e", "v_f"})

ALL_SITES = frozenset(
    HAND_SITES
    | {
        "best", "lo_clamp", "hi_clamp", "border_clip", "vleft_clip",
        "xdrop_prune", "edge_clear",
    }
)

PARAMS = ["m", "n", "a", "b", "sub", "v", "f", "out"]


@dataclass(frozen=True)
class GappedConfig:
    """Compile-time constants inlined into the kernel."""

    alphabet_size: int
    open_cost: int
    extend_cost: int
    band: int
    x_drop: int


def banded_xdrop_reference(
    codes_a: SequenceABC[int],
    codes_b: SequenceABC[int],
    sub_flat: SequenceABC[int],
    config: GappedConfig,
) -> int:
    """Pure-Python reference for the kernel's exact recurrence.

    Semi-global from (0, 0) over a band ``|j - i| <= band``, affine
    gaps, cells more than ``x_drop`` below the running best squashed to
    minus infinity. Returns the best cell score (>= 0 because the empty
    prefix scores 0).
    """
    m, n = len(codes_a), len(codes_b)
    neg = KERNEL_NEG_INF
    size = config.alphabet_size
    open_cost, ext = config.open_cost, config.extend_cost
    band, x_drop = config.band, config.x_drop

    v = [0] * (n + 1)
    f = [neg] * (n + 1)
    for j in range(1, n + 1):
        v[j] = -(open_cost + (j - 1) * ext) if j <= band else neg
    best = 0
    for i in range(1, m + 1):
        lo = max(1, i - band)
        hi = i + band
        if hi > n:
            hi = n
        if lo > hi:
            continue  # the band slid past the end of sequence B
        border = -(open_cost + (i - 1) * ext)
        if i > band:
            border = neg
        diag = v[lo - 1]
        v[0] = border
        vleft = border
        if lo > 1:
            vleft = neg
        e = neg
        for j in range(lo, hi + 1):
            e = max(e - ext, vleft - open_cost)
            fj, vj = f[j], v[j]
            fcur = max(fj - ext, vj - open_cost)
            w = sub_flat[codes_a[i - 1] * size + codes_b[j - 1]]
            vnew = diag + w
            vnew = max(vnew, e)
            vnew = max(vnew, fcur)
            best = max(best, vnew)
            if vnew < best - x_drop:
                vnew = neg
            diag = vj
            v[j] = vnew
            f[j] = fcur
            vleft = vnew
        if hi < n:
            v[hi + 1] = neg
            f[hi + 1] = neg
    return best


def build(variant: str, config: GappedConfig) -> Function:
    """Build the kernel IR for an author variant."""
    e = Emitter("semi_gapped_align", PARAMS, variant, hand_sites=HAND_SITES)
    open_c = const(config.open_cost)
    ext_c = const(config.extend_cost)
    neg_c = const(KERNEL_NEG_INF)
    band = config.band

    e.assign("i", const(1))
    e.assign("best", const(0))
    e.assign("border", const(-config.open_cost + config.extend_cost))

    e.start("outer.head")
    e.branch("le", reg("i"), reg("m"), "outer.body", "done")

    e.start("outer.body")
    # lo = max(1, i - band)  -- a max-shaped clamp the hand pass skipped
    e.assign("lo", BinOp("sub", reg("i"), const(band)))
    e.max_site("lo_clamp", "lo", const(1))
    # hi = min(n, i + band)  -- min shape: only isel can predicate it
    e.assign("hi", BinOp("add", reg("i"), const(band)))
    hi_then = e.fresh_label("hi_clamp.then")
    hi_cont = e.fresh_label("hi_clamp.cont")
    e.branch("gt", reg("hi"), reg("n"), hi_then, hi_cont, site="hi_clamp")
    e.start(hi_then)
    e.assign("hi", reg("n"))
    e.start(hi_cont)
    # skip rows whose band window slid past the end of sequence B
    row_live = e.fresh_label("row.live")
    e.branch("gt", reg("lo"), reg("hi"), "inner.end", row_live)
    e.start(row_live)
    # border = -gap_cost(i), dead beyond the band
    e.assign("border", BinOp("sub", reg("border"), ext_c))
    bc_then = e.fresh_label("border_clip.then")
    bc_cont = e.fresh_label("border_clip.cont")
    e.branch("gt", reg("i"), const(band), bc_then, bc_cont,
             site="border_clip")
    e.start(bc_then)
    e.assign("border", neg_c)
    e.start(bc_cont)
    # diag = V[i-1][lo-1]; then publish this row's border into v[0].
    e.assign("t1", BinOp("sub", reg("lo"), const(1)))
    e.load("diag", "v", reg("t1"), alias="vrow")
    e.store("v", const(0), reg("border"), alias="vrow")
    # vleft = V[i][lo-1]: the border in column 0, dead when lo > 1.
    e.assign("vleft", reg("border"))
    vc_then = e.fresh_label("vleft_clip.then")
    vc_cont = e.fresh_label("vleft_clip.cont")
    e.branch("gt", reg("lo"), const(1), vc_then, vc_cont, site="vleft_clip")
    e.start(vc_then)
    e.assign("vleft", neg_c)
    e.start(vc_cont)
    e.assign("ecur", neg_c)
    e.assign("t2", BinOp("sub", reg("i"), const(1)))
    e.load("t2", "a", reg("t2"))
    e.assign("subrow", BinOp("mul", reg("t2"), const(config.alphabet_size)))
    e.assign("j", reg("lo"))

    e.start("inner.head")
    e.branch("le", reg("j"), reg("hi"), "inner.body", "inner.end")

    e.start("inner.body")
    e.assign("ecur", BinOp("sub", reg("ecur"), ext_c))
    e.assign("t1", BinOp("sub", reg("vleft"), open_c))
    e.max_site("e_max", "ecur", reg("t1"))
    e.load("fj", "f", reg("j"), alias="frow")
    e.load("vj", "v", reg("j"), alias="vrow")
    e.assign("fcur", BinOp("sub", reg("fj"), ext_c))
    e.assign("t2", BinOp("sub", reg("vj"), open_c))
    e.max_site("f_max", "fcur", reg("t2"))
    e.assign("t3", BinOp("sub", reg("j"), const(1)))
    e.load("t3", "b", reg("t3"))
    e.assign("t3", BinOp("add", reg("subrow"), reg("t3")))
    e.load("w", "sub", reg("t3"))
    e.assign("vnew", BinOp("add", reg("diag"), reg("w")))
    e.max_site("v_e", "vnew", reg("ecur"))
    e.max_site("v_f", "vnew", reg("fcur"))
    # running best — hidden among the pruning logic; hand missed it
    e.max_site("best", "best", reg("vnew"))
    # X-drop: kill cells too far below the best
    e.assign("t1", BinOp("sub", reg("best"), const(config.x_drop)))
    xp_then = e.fresh_label("xdrop_prune.then")
    xp_cont = e.fresh_label("xdrop_prune.cont")
    e.branch("lt", reg("vnew"), reg("t1"), xp_then, xp_cont,
             site="xdrop_prune")
    e.start(xp_then)
    e.assign("vnew", neg_c)
    e.start(xp_cont)
    e.assign("diag", reg("vj"))
    e.store("v", reg("j"), reg("vnew"), alias="vrow")
    e.store("f", reg("j"), reg("fcur"), alias="frow")
    e.assign("vleft", reg("vnew"))
    e.assign("j", BinOp("add", reg("j"), const(1)))
    e.jump("inner.head")

    e.start("inner.end")
    # clear the stale cells the next row will read beyond this band edge
    ec_then = e.fresh_label("edge_clear.then")
    ec_cont = e.fresh_label("edge_clear.cont")
    e.branch("lt", reg("hi"), reg("n"), ec_then, ec_cont, site="edge_clear")
    e.start(ec_then)
    e.assign("t1", BinOp("add", reg("hi"), const(1)))
    e.assign("t2", neg_c)
    e.store("v", reg("t1"), reg("t2"), alias="vrow")
    e.store("f", reg("t1"), reg("t2"), alias="frow")
    e.start(ec_cont)
    e.assign("i", BinOp("add", reg("i"), const(1)))
    e.jump("outer.head")

    e.start("done")
    e.store("out", const(0), reg("best"))
    e.halt()
    return e.build()


HARNESS = KernelHarness("semi_gapped_align", build)


def run(
    variant: str,
    seq_a: Sequence,
    seq_b: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(11, 1),
    band: int = 12,
    x_drop: int = 30,
    trace: Trace | list[TraceEvent] | None = None,
) -> int:
    """Execute the kernel; must equal :func:`banded_xdrop_reference`."""
    n = len(seq_b)
    config = GappedConfig(
        alphabet_size=len(matrix.alphabet),
        open_cost=gaps.open_ + gaps.extend,
        extend_cost=gaps.extend,
        band=band,
        x_drop=x_drop,
    )
    v_row = [0] * (n + 1)
    for j in range(1, n + 1):
        v_row[j] = (
            -(config.open_cost + (j - 1) * config.extend_cost)
            if j <= band
            else KERNEL_NEG_INF
        )
    segments = {
        "a": list(seq_a.codes),
        "b": list(seq_b.codes),
        "sub": [int(x) for x in matrix.scores.reshape(-1)],
        "v": v_row,
        "f": [KERNEL_NEG_INF] * (n + 1),
        "out": [0],
    }
    params = {"m": len(seq_a), "n": n}
    return HARNESS.run(variant, config, segments, params, trace=trace)


def reference(
    seq_a: Sequence,
    seq_b: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(11, 1),
    band: int = 12,
    x_drop: int = 30,
) -> int:
    """Convenience wrapper around :func:`banded_xdrop_reference`."""
    config = GappedConfig(
        alphabet_size=len(matrix.alphabet),
        open_cost=gaps.open_ + gaps.extend,
        extend_cost=gaps.extend,
        band=band,
        x_drop=x_drop,
    )
    return banded_xdrop_reference(
        seq_a.codes,
        seq_b.codes,
        [int(x) for x in matrix.scores.reshape(-1)],
        config,
    )
