"""Shared harness for building, compiling, caching and running kernels.

Each kernel module supplies a ``build(variant, config)`` function
producing IR for the three author-controlled variants; ``config`` is a
hashable tuple of compile-time constants (gap costs, alphabet size,
band width, ...) that are inlined as immediates — exactly what a C
compiler does to ``-O3`` kernels, and what keeps the virtual register
count inside the GPR file.

The harness derives the two compiler variants by running if-conversion
on the baseline IR, caches compiled programs per ``(variant, config)``,
and executes them against named memory segments.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

from repro.compiler.codegen import CompiledKernel, compile_function
from repro.compiler.ifconversion import Decision, if_convert
from repro.compiler.ir import Function
from repro.errors import WorkloadError
from repro.isa.interpreter import run_program
from repro.isa.memory import Memory
from repro.isa.trace import Trace, TraceEvent

#: "Minus infinity" used inside kernels. Small enough that thousands of
#: gap subtractions stay easily representable, large enough (in
#: magnitude) to never win a max against a real score.
KERNEL_NEG_INF = -10_000_000

#: The six code variants of Figure 3. "combination" is the paper's best
#: mix: hand-inserted max instructions plus the modified compiler
#: additionally emitting isel wherever it can prove a hammock safe.
ALL_VARIANTS = (
    "baseline", "hand_max", "hand_isel", "comp_max", "comp_isel",
    "combination",
)

#: Variants that carry an if-conversion decision log.
COMPILER_VARIANTS = ("comp_max", "comp_isel", "combination")


class KernelHarness:
    """Compile-and-run manager for one kernel.

    Parameters
    ----------
    name:
        Kernel name (for error messages).
    build:
        Callable ``build(variant, config)`` mapping an author variant
        (``baseline`` / ``hand_max`` / ``hand_isel``) and a config tuple
        to an IR :class:`Function`.
    """

    def __init__(
        self, name: str, build: Callable[[str, Hashable], Function]
    ) -> None:
        self.name = name
        self._build = build
        self._functions: dict[tuple[str, Hashable], Function] = {}
        self._compiled: dict[tuple[str, Hashable], CompiledKernel] = {}
        self._decisions: dict[tuple[str, Hashable], list[Decision]] = {}

    def function(self, variant: str, config: Hashable) -> Function:
        """The IR for ``variant`` (compiler variants run if-conversion)."""
        if variant not in ALL_VARIANTS:
            raise WorkloadError(
                f"{self.name}: unknown variant {variant!r}; "
                f"expected one of {ALL_VARIANTS}"
            )
        key = (variant, config)
        if key not in self._functions:
            if variant == "combination":
                # Hand-inserted max first, then the compiler's isel pass
                # over whatever branches remain (§VI-A "Combination").
                result = if_convert(self._build("hand_max", config), "isel")
                self._functions[key] = result.function
                self._decisions[key] = result.decisions
            elif variant in COMPILER_VARIANTS:
                style = variant.removeprefix("comp_")
                result = if_convert(self._build("baseline", config), style)
                self._functions[key] = result.function
                self._decisions[key] = result.decisions
            else:
                self._functions[key] = self._build(variant, config)
        return self._functions[key]

    def decisions(self, variant: str, config: Hashable) -> list[Decision]:
        """If-conversion decision log (compiler variants only)."""
        self.function(variant, config)
        key = (variant, config)
        if key not in self._decisions:
            raise WorkloadError(
                f"{self.name}: variant {variant!r} has no compiler decisions"
            )
        return self._decisions[key]

    def compiled(self, variant: str, config: Hashable) -> CompiledKernel:
        """Lowered program for ``variant`` (cached)."""
        key = (variant, config)
        if key not in self._compiled:
            self._compiled[key] = compile_function(
                self.function(variant, config)
            )
        return self._compiled[key]

    def run(
        self,
        variant: str,
        config: Hashable,
        segments: dict[str, list[int]],
        params: dict[str, int],
        out_segment: str = "out",
        trace: Trace | list[TraceEvent] | None = None,
    ) -> int:
        """Execute ``variant`` and return ``out_segment[0]``.

        ``segments`` maps parameter names to initial memory contents;
        ``params`` binds scalar parameters.
        """
        kernel = self.compiled(variant, config)
        total = sum(len(words) for words in segments.values()) + 64
        memory = Memory(total)
        initial: dict[int, int] = {}
        for seg_name, words in segments.items():
            base = memory.alloc(seg_name, words)
            initial[kernel.gpr(seg_name)] = base
        for param_name, value in params.items():
            initial[kernel.gpr(param_name)] = value
        run_program(kernel.program, memory, initial, trace=trace)
        out_base, _ = memory.segment(out_segment)
        return memory.load(out_base)
