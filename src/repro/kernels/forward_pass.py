"""The ``forward_pass`` kernel: Clustalw's pairwise alignment inner loop.

Global (Needleman–Wunsch) affine-gap scoring, the function the paper
finds consuming >99% of ``pairalign``'s cycles. Five conditional-
assignment sites per cell, matching "five such conditional statements of
which three are consecutive" (§V):

========== ============================================  ================
site       meaning                                       shape
========== ============================================  ================
e_max      ``E = max(E - Ws, Vleft - Wg - Ws)``          register
f_max      ``F[j] = max(F[j] - Ws, V[j] - Wg - Ws)``     conditional store
v_e        ``V = max(G, E)``                             register
v_f        ``V = max(V, F[j])``                          register
score_max  running matrix maximum (kept in memory)       conditional store
========== ============================================  ================

The two memory-shaped sites model the paper's Clustalw/Hmmer finding:
"the heavy use of memory array references" defeats the compiler — a
conditional store cannot be speculated, so if-conversion refuses those
two sites while a human happily rewrites them as load / ``max`` /
unconditional store. Hand-inserted code therefore beats
compiler-generated code here, and the branches the compiler leaves
behind are exactly the hard-to-predict ones (Table II's rising Clustalw
mispredict rate).

Semantics: ``out[0]`` (the final cell) must equal
:func:`repro.bio.pairwise.needleman_wunsch_score`; ``out[1]`` is the
running matrix maximum used by Clustalw's percent-identity distance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.scoring import GapPenalties, SubstitutionMatrix
from repro.bio.sequence import Sequence
from repro.compiler.ir import BinOp, Function
from repro.isa.trace import Trace, TraceEvent
from repro.kernels.builder import Emitter, const, reg
from repro.kernels.runtime import KERNEL_NEG_INF, KernelHarness

#: All five sites are obvious max statements; the hand pass gets them all.
HAND_SITES = None

ALL_SITES = frozenset({"e_max", "f_max", "v_e", "v_f", "score_max"})

PARAMS = ["m", "n", "a", "b", "sub", "v", "f", "out"]


@dataclass(frozen=True)
class FpConfig:
    """Compile-time constants inlined into the kernel."""

    alphabet_size: int
    open_cost: int
    extend_cost: int


def build(variant: str, config: FpConfig) -> Function:
    """Build the kernel IR for an author variant."""
    e = Emitter("forward_pass", PARAMS, variant, hand_sites=HAND_SITES)
    open_c = const(config.open_cost)
    ext_c = const(config.extend_cost)

    # out[1] holds the running maximum; start it at zero like Clustalw.
    e.assign("i", const(1))
    e.assign("border", const(-config.open_cost + config.extend_cost))

    e.start("outer.head")
    e.branch("le", reg("i"), reg("m"), "outer.body", "done")

    e.start("outer.body")
    e.assign("t1", BinOp("sub", reg("i"), const(1)))
    e.load("ca", "a", reg("t1"))
    e.assign("subrow", BinOp("mul", reg("ca"), const(config.alphabet_size)))
    # diag = V[i-1][0]; V[i][0] = -gap_cost(i), tracked incrementally.
    e.load("diag", "v", const(0))
    e.assign("border", BinOp("sub", reg("border"), ext_c))
    e.store("v", const(0), reg("border"), alias="vrow")
    e.assign("ecur", const(KERNEL_NEG_INF))
    e.assign("vleft", reg("border"))
    e.assign("j", const(1))

    e.start("inner.head")
    e.branch("le", reg("j"), reg("n"), "inner.body", "inner.end")

    e.start("inner.body")
    # E = max(E - ext, vleft - open)           (register site)
    e.assign("ecur", BinOp("sub", reg("ecur"), ext_c))
    e.assign("t1", BinOp("sub", reg("vleft"), open_c))
    e.max_site("e_max", "ecur", reg("t1"))
    # F[j] = max(F[j] - ext, V[j] - open)      (conditional-store site)
    e.load("vj", "v", reg("j"), alias="vrow")
    e.load("fj", "f", reg("j"), alias="frow")
    e.assign("t2", BinOp("sub", reg("fj"), ext_c))
    e.store("f", reg("j"), reg("t2"), alias="frow")
    e.assign("t1", BinOp("sub", reg("vj"), open_c))
    e.cond_store_max_site("f_max", "f", reg("j"), reg("t1"), "fsc",
                          alias="frow")
    # G = diag + sub[ca*size + b[j-1]]
    e.assign("t3", BinOp("sub", reg("j"), const(1)))
    e.load("cb", "b", reg("t3"))
    e.assign("t3", BinOp("add", reg("subrow"), reg("cb")))
    e.load("w", "sub", reg("t3"))
    e.assign("vnew", BinOp("add", reg("diag"), reg("w")))
    # V = max(G, E, F[j])  -- the "three consecutive" statements
    e.max_site("v_e", "vnew", reg("ecur"))
    e.load("fcur", "f", reg("j"), alias="frow")
    e.max_site("v_f", "vnew", reg("fcur"))
    # running matrix maximum, kept in memory like Clustalw's maxscore
    e.cond_store_max_site("score_max", "out", const(1), reg("vnew"), "msc",
                          alias="outseg")
    # rotate row state
    e.assign("diag", reg("vj"))
    e.store("v", reg("j"), reg("vnew"), alias="vrow")
    e.assign("vleft", reg("vnew"))
    e.assign("j", BinOp("add", reg("j"), const(1)))
    e.jump("inner.head")

    e.start("inner.end")
    e.assign("i", BinOp("add", reg("i"), const(1)))
    e.jump("outer.head")

    e.start("done")
    # final global score = V[m][n] = vleft after the last inner loop
    e.store("out", const(0), reg("vleft"), alias="outseg")
    e.halt()
    return e.build()


HARNESS = KernelHarness("forward_pass", build)


def run(
    variant: str,
    seq_a: Sequence,
    seq_b: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(),
    trace: Trace | list[TraceEvent] | None = None,
) -> int:
    """Execute the kernel; returns the global alignment score.

    Must equal :func:`repro.bio.pairwise.needleman_wunsch_score`.
    """
    n = len(seq_b)
    config = FpConfig(
        alphabet_size=len(matrix.alphabet),
        open_cost=gaps.open_ + gaps.extend,
        extend_cost=gaps.extend,
    )
    # Border: V[0][j] = -gap_cost(j), F[0][j] = -inf.
    v_row = [0] + [-gaps.cost(j) for j in range(1, n + 1)]
    segments = {
        "a": list(seq_a.codes),
        "b": list(seq_b.codes),
        "sub": [int(x) for x in matrix.scores.reshape(-1)],
        "v": v_row,
        "f": [KERNEL_NEG_INF] * (n + 1),
        "out": [0, 0],
    }
    params = {"m": len(seq_a), "n": n}
    return HARNESS.run(variant, config, segments, params, trace=trace)


def run_maxscore(
    variant: str,
    seq_a: Sequence,
    seq_b: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(),
) -> tuple[int, int]:
    """Like :func:`run` but also returns the running matrix maximum."""
    n = len(seq_b)
    config = FpConfig(
        alphabet_size=len(matrix.alphabet),
        open_cost=gaps.open_ + gaps.extend,
        extend_cost=gaps.extend,
    )
    v_row = [0] + [-gaps.cost(j) for j in range(1, n + 1)]
    segments = {
        "a": list(seq_a.codes),
        "b": list(seq_b.codes),
        "sub": [int(x) for x in matrix.scores.reshape(-1)],
        "v": v_row,
        "f": [KERNEL_NEG_INF] * (n + 1),
        "out": [0, 0],
    }
    kernel = HARNESS.compiled(variant, config)
    from repro.isa.interpreter import run_program
    from repro.isa.memory import Memory

    total = sum(len(words) for words in segments.values()) + 64
    memory = Memory(total)
    initial = {}
    for seg_name, words in segments.items():
        base = memory.alloc(seg_name, words)
        initial[kernel.gpr(seg_name)] = base
    initial[kernel.gpr("m")] = len(seq_a)
    initial[kernel.gpr("n")] = n
    run_program(kernel.program, memory, initial)
    out_base, _ = memory.segment("out")
    return memory.load(out_base), memory.load(out_base + 1)
