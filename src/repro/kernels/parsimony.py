"""Fitch-parsimony kernel: the paper's §VIII extension to Phylip.

The paper closes by claiming its results "can be extended to ... the
phylogeny reconstruction application Phylip". This kernel tests that
claim: the small-parsimony inner loop walks the tree bottom-up per
alignment site, intersecting child state sets and paying one mutation
when the intersection is empty::

    inter = left & right;
    if (inter == 0) { inter = left | right; cost++; }

The conditional is value-dependent (it fires exactly at the mutation
sites of the data) but is *not* a max idiom — the hypothetical ``max``
instruction cannot express it, while ``isel`` can. The variants behave
accordingly:

* ``baseline`` / ``hand_max`` — compare + branch (max has no handle);
* ``hand_isel`` — two isel selections on the raw intersection;
* ``comp_isel`` / ``combination`` — if-conversion converts the hammock;
* ``comp_max`` — the max-style pattern matcher finds nothing.

Scores are validated against :func:`repro.bio.phylo.fitch_score`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.guidetree import TreeNode
from repro.bio.phylo import _site_masks
from repro.compiler.ir import BinOp, Function, Select
from repro.errors import WorkloadError
from repro.isa.trace import Trace, TraceEvent
from repro.kernels.builder import Emitter, const, reg
from repro.kernels.runtime import KernelHarness

#: The only conditional-assignment site; it has no max shape.
ALL_SITES = frozenset({"fitch"})

PARAMS = [
    "nsites", "nleaves", "nintern", "masks", "ileft", "iright", "state",
    "out",
]


@dataclass(frozen=True)
class ParsimonyConfig:
    """No compile-time constants are needed; kept for harness symmetry."""


def build(variant: str, config: ParsimonyConfig) -> Function:
    """Build the kernel IR for an author variant."""
    e = Emitter("fitch_parsimony", PARAMS, variant)

    e.assign("cost", const(0))
    e.assign("site", const(0))

    e.start("site.head")
    e.branch("lt", reg("site"), reg("nsites"), "site.body", "done")

    e.start("site.body")
    e.assign("mbase", BinOp("mul", reg("site"), reg("nleaves")))
    e.assign("j", const(0))

    e.start("leaf.head")
    e.branch("lt", reg("j"), reg("nleaves"), "leaf.body", "intern.init")

    e.start("leaf.body")
    e.assign("t1", BinOp("add", reg("mbase"), reg("j")))
    e.load("m", "masks", reg("t1"))
    e.store("state", reg("j"), reg("m"), alias="state")
    e.assign("j", BinOp("add", reg("j"), const(1)))
    e.jump("leaf.head")

    e.start("intern.init")
    e.assign("k", const(0))

    e.start("intern.head")
    e.branch("lt", reg("k"), reg("nintern"), "intern.body", "site.next")

    e.start("intern.body")
    e.load("t1", "ileft", reg("k"))
    e.load("l", "state", reg("t1"), alias="state")
    e.load("t2", "iright", reg("k"))
    e.load("r", "state", reg("t2"), alias="state")
    e.assign("raw", BinOp("and", reg("l"), reg("r")))
    if e.variant == "hand_isel":
        # Hand-inserted isel: both outcomes computed, selected on the
        # raw intersection; no branch remains.
        e.assign("u", BinOp("or", reg("l"), reg("r")))
        e.assign("c1", BinOp("add", reg("cost"), const(1)))
        e.emit(Select("res", "eq", reg("raw"), const(0), reg("u"),
                      reg("raw")))
        e.emit(Select("cost", "eq", reg("raw"), const(0), reg("c1"),
                      reg("cost")))
    else:
        # Branchy form (baseline and hand_max: max cannot express it).
        e.assign("res", reg("raw"))
        then_label = e.fresh_label("fitch.then")
        cont_label = e.fresh_label("fitch.cont")
        e.branch("eq", reg("raw"), const(0), then_label, cont_label,
                 site="fitch")
        e.start(then_label)
        e.assign("res", BinOp("or", reg("l"), reg("r")))
        e.assign("cost", BinOp("add", reg("cost"), const(1)))
        e.start(cont_label)
    e.assign("pos", BinOp("add", reg("nleaves"), reg("k")))
    e.store("state", reg("pos"), reg("res"), alias="state")
    e.assign("k", BinOp("add", reg("k"), const(1)))
    e.jump("intern.head")

    e.start("site.next")
    e.assign("site", BinOp("add", reg("site"), const(1)))
    e.jump("site.head")

    e.start("done")
    e.store("out", const(0), reg("cost"))
    e.halt()
    return e.build()


HARNESS = KernelHarness("fitch_parsimony", build)


def _tree_arrays(tree: TreeNode, n_leaves: int):
    """Postorder child-index arrays; leaves map to their row indices."""
    ileft: list[int] = []
    iright: list[int] = []
    internal_index: dict[int, int] = {}

    def node_position(node: TreeNode) -> int:
        if node.is_leaf:
            assert node.index is not None
            return node.index
        return n_leaves + internal_index[id(node)]

    for node in tree.postorder():
        if node.is_leaf:
            continue
        left_position = node_position(node.left)
        right_position = node_position(node.right)
        internal_index[id(node)] = len(ileft)
        ileft.append(left_position)
        iright.append(right_position)
    return ileft, iright


def run(
    variant: str,
    tree: TreeNode,
    rows: list[str],
    symbols: str,
    trace: Trace | list[TraceEvent] | None = None,
) -> int:
    """Execute the kernel; must equal :func:`repro.bio.phylo.fitch_score`."""
    if not rows:
        raise WorkloadError("need aligned rows")
    n_leaves = len(rows)
    width = len(rows[0])
    masks: list[int] = []
    for col in range(width):
        column = "".join(row[col] for row in rows)
        masks.extend(_site_masks(column, symbols))
    ileft, iright = _tree_arrays(tree, n_leaves)
    n_intern = len(ileft)
    segments = {
        "masks": masks,
        "ileft": ileft,
        "iright": iright,
        "state": [0] * (n_leaves + n_intern),
        "out": [0],
    }
    params = {
        "nsites": width,
        "nleaves": n_leaves,
        "nintern": n_intern,
    }
    return HARNESS.run(
        variant, ParsimonyConfig(), segments, params, trace=trace
    )
