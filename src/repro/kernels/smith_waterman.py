"""The ``dropgsw`` kernel: Smith–Waterman inner loop (Fasta / ssearch).

A row-at-a-time affine-gap local-alignment scorer, written in IR with
six conditional-assignment sites per cell — the ``max`` statements of
the paper's pseudo-code in §III:

========= =============================================  =============
site      meaning                                        shape
========= =============================================  =============
e_max     ``E = max(E - Ws, Vleft - Wg - Ws)``           register
f_max     ``F = max(F - Ws, Vup - Wg - Ws)``             register
v_e       ``V = max(V, E)``                              register
v_f       ``V = max(V, F)``                              register
v_zero    ``V = max(V, 0)``                              register
best      running best-cell tracking                     register
========= =============================================  =============

The hand-inserted variants convert only :data:`HAND_SITES` — the five
DP-recurrence sites a programmer spots by inspection. The ``best``
update hides among the row-rotation bookkeeping at the bottom of the
loop, so the hand pass misses it; compiler if-conversion finds it,
which is why compiler-generated code beats hand-inserted code for
Fasta in Figure 3.

Semantics are validated against
:func:`repro.bio.pairwise.smith_waterman_score` (same recurrence).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.scoring import GapPenalties, SubstitutionMatrix
from repro.bio.sequence import Sequence
from repro.compiler.ir import BinOp, Function
from repro.isa.trace import Trace, TraceEvent
from repro.kernels.builder import Emitter, const, reg
from repro.kernels.runtime import KERNEL_NEG_INF, KernelHarness

#: Sites the paper's authors hand-converted by inspection.
HAND_SITES = frozenset({"e_max", "f_max", "v_e", "v_f", "v_zero"})

#: All conditional-assignment sites in the kernel.
ALL_SITES = frozenset(HAND_SITES | {"best"})

#: Runtime parameters (array bases and lengths).
PARAMS = ["m", "n", "a", "b", "sub", "v", "f", "out"]


@dataclass(frozen=True)
class SwConfig:
    """Compile-time constants inlined into the kernel."""

    alphabet_size: int
    open_cost: int  # gap open + extend (the cost of a length-1 gap)
    extend_cost: int


def build(variant: str, config: SwConfig) -> Function:
    """Build the kernel IR for an author variant."""
    e = Emitter("dropgsw", PARAMS, variant, hand_sites=HAND_SITES)
    open_c = const(config.open_cost)
    ext_c = const(config.extend_cost)

    e.assign("i", const(0))
    e.assign("best", const(0))

    e.start("outer.head")
    e.branch("lt", reg("i"), reg("m"), "outer.body", "done")

    e.start("outer.body")
    e.load("ca", "a", reg("i"))
    e.assign("subrow", BinOp("mul", reg("ca"), const(config.alphabet_size)))
    e.load("diag", "v", const(0))
    e.assign("ecur", const(KERNEL_NEG_INF))
    e.assign("vleft", const(0))
    e.assign("j", const(1))

    e.start("inner.head")
    e.branch("le", reg("j"), reg("n"), "inner.body", "inner.end")

    e.start("inner.body")
    # E = max(E - ext, vleft - open)
    e.assign("ecur", BinOp("sub", reg("ecur"), ext_c))
    e.assign("t1", BinOp("sub", reg("vleft"), open_c))
    e.max_site("e_max", "ecur", reg("t1"))
    # F = max(F[j] - ext, V[j] - open)
    e.load("fj", "f", reg("j"), alias="frow")
    e.load("vj", "v", reg("j"), alias="vrow")
    e.assign("fcur", BinOp("sub", reg("fj"), ext_c))
    e.assign("t2", BinOp("sub", reg("vj"), open_c))
    e.max_site("f_max", "fcur", reg("t2"))
    # G = diag + sub[ca*size + b[j-1]]
    e.assign("t3", BinOp("sub", reg("j"), const(1)))
    e.load("cb", "b", reg("t3"))
    e.assign("t3", BinOp("add", reg("subrow"), reg("cb")))
    e.load("w", "sub", reg("t3"))
    e.assign("vnew", BinOp("add", reg("diag"), reg("w")))
    # V = max(G, E, F, 0)
    e.max_site("v_e", "vnew", reg("ecur"))
    e.max_site("v_f", "vnew", reg("fcur"))
    e.max_site("v_zero", "vnew", const(0))
    # rotate row state
    e.assign("diag", reg("vj"))
    e.store("v", reg("j"), reg("vnew"), alias="vrow")
    e.store("f", reg("j"), reg("fcur"), alias="frow")
    e.assign("vleft", reg("vnew"))
    # running best (the site hand-insertion missed)
    e.max_site("best", "best", reg("vnew"))
    e.assign("j", BinOp("add", reg("j"), const(1)))
    e.jump("inner.head")

    e.start("inner.end")
    e.assign("i", BinOp("add", reg("i"), const(1)))
    e.jump("outer.head")

    e.start("done")
    e.store("out", const(0), reg("best"))
    e.halt()
    return e.build()


HARNESS = KernelHarness("dropgsw", build)


def run(
    variant: str,
    seq_a: Sequence,
    seq_b: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(),
    trace: Trace | list[TraceEvent] | None = None,
) -> int:
    """Execute the kernel on real sequences; returns the SW score.

    The result must equal
    :func:`repro.bio.pairwise.smith_waterman_score` on the same inputs
    for every variant — the semantic cross-check the tests enforce.
    """
    n = len(seq_b)
    config = SwConfig(
        alphabet_size=len(matrix.alphabet),
        open_cost=gaps.open_ + gaps.extend,
        extend_cost=gaps.extend,
    )
    segments = {
        "a": list(seq_a.codes),
        "b": list(seq_b.codes),
        "sub": [int(x) for x in matrix.scores.reshape(-1)],
        "v": [0] * (n + 1),
        "f": [KERNEL_NEG_INF] * (n + 1),
        "out": [0],
    }
    params = {"m": len(seq_a), "n": n}
    return HARNESS.run(variant, config, segments, params, trace=trace)
