"""The four hot dynamic-programming kernels, authored in IR.

Per application (paper Figure 1):

* Fasta / ssearch — :mod:`repro.kernels.smith_waterman` (``dropgsw``);
* Clustalw — :mod:`repro.kernels.forward_pass` (``forward_pass``);
* Hmmer — :mod:`repro.kernels.viterbi` (``P7Viterbi``);
* Blast — :mod:`repro.kernels.gapped_extend` (``SEMI_G_ALIGN_EX``);
* plus the SVIII extension, Phylip's Fitch parsimony
  (:mod:`repro.kernels.parsimony`).

Each module exposes ``build(variant, config)`` (the IR), a module-level
``HARNESS`` (compilation cache + runner) and ``run(...)`` executing on
real inputs with results cross-checked against the pure-Python
references in :mod:`repro.bio`.
"""

from repro.kernels import (
    forward_pass,
    gapped_extend,
    parsimony,
    smith_waterman,
    viterbi,
)
from repro.kernels.builder import Emitter
from repro.kernels.runtime import (
    ALL_VARIANTS,
    COMPILER_VARIANTS,
    KERNEL_NEG_INF,
    KernelHarness,
)

#: Kernel module per application, keyed like the paper's workloads.
KERNELS_BY_APP = {
    "blast": gapped_extend,
    "clustalw": forward_pass,
    "fasta": smith_waterman,
    "hmmer": viterbi,
}

def listing_for(app: str, variant: str = "baseline") -> str:
    """Assembly listing of one application's kernel in one variant.

    Uses a representative compile-time configuration per application
    (the same shapes the characterisation harness uses).
    """
    from repro.bio.scoring import BLOSUM62
    from repro.errors import WorkloadError

    size = len(BLOSUM62.alphabet)
    configs = {
        "blast": gapped_extend.GappedConfig(size, 12, 1, 12, 30),
        "clustalw": forward_pass.FpConfig(size, 12, 2),
        "fasta": smith_waterman.SwConfig(size, 12, 2),
        "hmmer": viterbi.ViterbiConfig(24, size),
        "phylip": parsimony.ParsimonyConfig(),
    }
    modules = dict(KERNELS_BY_APP, phylip=parsimony)
    if app not in modules:
        raise WorkloadError(
            f"unknown app {app!r}; have {sorted(modules)}"
        )
    harness = modules[app].HARNESS
    return harness.compiled(variant, configs[app]).program.listing()


#: The hot function name per application (paper Figure 1).
KERNEL_FUNCTION_NAMES = {
    "blast": "SEMI_G_ALIGN_EX",
    "clustalw": "forward_pass",
    "fasta": "dropgsw",
    "hmmer": "P7Viterbi",
}

__all__ = [
    "forward_pass",
    "gapped_extend",
    "parsimony",
    "smith_waterman",
    "viterbi",
    "Emitter",
    "ALL_VARIANTS",
    "COMPILER_VARIANTS",
    "KERNEL_NEG_INF",
    "KernelHarness",
    "KERNELS_BY_APP",
    "KERNEL_FUNCTION_NAMES",
]
