"""The ``P7Viterbi`` kernel: Hmmer's profile-HMM scorer.

Integer Viterbi over a Plan7-lite model, written the way HMMER2's C
code actually writes it — three-way maxima expressed as *conditional
stores into the row arrays*::

    mc[k] = begin[k];
    if ((sc = mpp[k-1] + tpmm[k-1]) > mc[k]) mc[k] = sc;
    if ((sc = ip[k-1]  + tpim[k-1]) > mc[k]) mc[k] = sc;
    ...

Six conditional-assignment sites per model position:

========= ==============================================  ================
site      meaning                                         shape
========= ==============================================  ================
m_mm      match from match (k-1)                          conditional store
m_im      match from insert (k-1)                         conditional store
m_dm      match from delete (k-1)                         conditional store
i_ii      insert self-loop vs match entry                 conditional store
d_dd      delete chain vs match exit                      conditional store
exit_max  local exit ``best = max(best, mc + end[k])``    register
========= ==============================================  ================

Because five of the six sites are array references, compiler
if-conversion only captures ``exit_max`` — the paper's "the compiler is
severely limited by the abundant array memory references" for Hmmer —
while the hand variants convert everything.

The model tables live in one flat ``hmm`` segment (layout computed from
the compile-time model length/alphabet size); the kernel's score must
equal :func:`repro.bio.hmm.viterbi_score` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.hmm import NEG_INF_SCORE, ProfileHmm
from repro.bio.sequence import Sequence
from repro.compiler.ir import BinOp, Function
from repro.errors import HmmError
from repro.isa.trace import Trace, TraceEvent
from repro.kernels.builder import Emitter, const, reg
from repro.kernels.runtime import KernelHarness

#: The hand pass converts every site (they are all textbook max idioms).
HAND_SITES = None

ALL_SITES = frozenset({"m_mm", "m_im", "m_dm", "i_ii", "d_dd", "exit_max"})

PARAMS = [
    "n", "seq", "hmm", "mprev", "iprev", "dprev", "mcur", "icur", "dcur",
    "out",
]


@dataclass(frozen=True)
class ViterbiConfig:
    """Compile-time constants: model length and alphabet size."""

    length: int
    alphabet_size: int

    @property
    def off_insert(self) -> int:
        return self.length * self.alphabet_size

    @property
    def off_tables(self) -> int:
        return 2 * self.length * self.alphabet_size

    def table_offset(self, index: int) -> int:
        """Offset of per-position table ``index`` (tmm=0 ... end=8)."""
        return self.off_tables + index * self.length


# Table indices within the flat hmm segment.
_TMM, _TMI, _TMD, _TIM, _TII, _TDM, _TDD, _BEGIN, _END = range(9)


def pack_hmm(hmm: ProfileHmm) -> list[int]:
    """Flatten a :class:`ProfileHmm` into the kernel's memory layout."""
    words: list[int] = []
    words.extend(int(x) for x in hmm.match_scores.reshape(-1))
    words.extend(int(x) for x in hmm.insert_scores.reshape(-1))
    for table in (
        hmm.t_mm, hmm.t_mi, hmm.t_md, hmm.t_im, hmm.t_ii,
        hmm.t_dm, hmm.t_dd, hmm.begin_to_match, hmm.match_to_end,
    ):
        words.extend(int(x) for x in table)
    return words


def build(variant: str, config: ViterbiConfig) -> Function:
    """Build the kernel IR for an author variant."""
    e = Emitter("p7_viterbi", PARAMS, variant, hand_sites=HAND_SITES)
    length = config.length
    size = config.alphabet_size

    def table(index: int, position) -> None:
        """t2 = hmm[table_offset(index) + position]."""
        e.assign("t2", BinOp("add", position, const(config.table_offset(index))))
        e.load("t2", "hmm", reg("t2"))

    e.assign("best", const(NEG_INF_SCORE))
    e.assign("i", const(0))

    e.start("outer.head")
    e.branch("lt", reg("i"), reg("n"), "outer.body", "done")

    e.start("outer.body")
    e.load("code", "seq", reg("i"))
    # ---- k = 0 (peeled: no k-1 terms) --------------------------------
    # mc = begin[0] + match[0, code]
    e.load("t1", "hmm", const(config.table_offset(_BEGIN)))
    e.load("w", "hmm", reg("code"))  # match[0*size + code]
    e.assign("mc", BinOp("add", reg("t1"), reg("w")))
    e.store("mcur", const(0), reg("mc"), alias="mrow")
    # ic[0] = max(mprev[0] + tmi[0], iprev[0] + tii[0]) + ins[0, code]
    e.load("t1", "mprev", const(0), alias="mrow")
    e.load("t2", "hmm", const(config.table_offset(_TMI)))
    e.assign("s", BinOp("add", reg("t1"), reg("t2")))
    e.store("icur", const(0), reg("s"), alias="irow")
    e.load("t1", "iprev", const(0), alias="irow")
    e.load("t2", "hmm", const(config.table_offset(_TII)))
    e.assign("s", BinOp("add", reg("t1"), reg("t2")))
    e.cond_store_max_site("i_ii", "icur", const(0), reg("s"), "csc",
                          alias="irow")
    e.load("t1", "icur", const(0), alias="irow")
    e.assign("t2", BinOp("add", reg("code"), const(config.off_insert)))
    e.load("w", "hmm", reg("t2"))
    e.assign("t1", BinOp("add", reg("t1"), reg("w")))
    e.store("icur", const(0), reg("t1"), alias="irow")
    # dc[0] = -inf
    e.assign("t1", const(NEG_INF_SCORE))
    e.store("dcur", const(0), reg("t1"), alias="drow")
    # exit for k = 0
    e.load("t2", "hmm", const(config.table_offset(_END)))
    e.assign("s", BinOp("add", reg("mc"), reg("t2")))
    e.max_site("exit_max", "best", reg("s"))
    e.assign("k", const(1))

    e.start("inner.head")
    e.branch("lt", reg("k"), const(length), "inner.body", "inner.end")

    e.start("inner.body")
    e.assign("km1", BinOp("sub", reg("k"), const(1)))
    # ---- match state --------------------------------------------------
    e.assign("t2", BinOp("add", reg("k"), const(config.table_offset(_BEGIN))))
    e.load("t1", "hmm", reg("t2"))
    e.store("mcur", reg("k"), reg("t1"), alias="mrow")
    e.load("t1", "mprev", reg("km1"), alias="mrow")
    table(_TMM, reg("km1"))
    e.assign("s", BinOp("add", reg("t1"), reg("t2")))
    e.cond_store_max_site("m_mm", "mcur", reg("k"), reg("s"), "csc",
                          alias="mrow")
    e.load("t1", "iprev", reg("km1"), alias="irow")
    table(_TIM, reg("km1"))
    e.assign("s", BinOp("add", reg("t1"), reg("t2")))
    e.cond_store_max_site("m_im", "mcur", reg("k"), reg("s"), "csc",
                          alias="mrow")
    e.load("t1", "dprev", reg("km1"), alias="drow")
    table(_TDM, reg("km1"))
    e.assign("s", BinOp("add", reg("t1"), reg("t2")))
    e.cond_store_max_site("m_dm", "mcur", reg("k"), reg("s"), "csc",
                          alias="mrow")
    # add match emission: mc = mcur[k] + match[k*size + code]
    e.assign("t2", BinOp("mul", reg("k"), const(size)))
    e.assign("t2", BinOp("add", reg("t2"), reg("code")))
    e.load("w", "hmm", reg("t2"))
    e.load("mc", "mcur", reg("k"), alias="mrow")
    e.assign("mc", BinOp("add", reg("mc"), reg("w")))
    e.store("mcur", reg("k"), reg("mc"), alias="mrow")
    # ---- insert state --------------------------------------------------
    e.load("t1", "mprev", reg("k"), alias="mrow")
    table(_TMI, reg("k"))
    e.assign("s", BinOp("add", reg("t1"), reg("t2")))
    e.store("icur", reg("k"), reg("s"), alias="irow")
    e.load("t1", "iprev", reg("k"), alias="irow")
    table(_TII, reg("k"))
    e.assign("s", BinOp("add", reg("t1"), reg("t2")))
    e.cond_store_max_site("i_ii", "icur", reg("k"), reg("s"), "csc",
                          alias="irow")
    e.assign("t2", BinOp("mul", reg("k"), const(size)))
    e.assign("t2", BinOp("add", reg("t2"), reg("code")))
    e.assign("t2", BinOp("add", reg("t2"), const(config.off_insert)))
    e.load("w", "hmm", reg("t2"))
    e.load("t1", "icur", reg("k"), alias="irow")
    e.assign("t1", BinOp("add", reg("t1"), reg("w")))
    e.store("icur", reg("k"), reg("t1"), alias="irow")
    # ---- delete state ---------------------------------------------------
    e.load("t1", "mcur", reg("km1"), alias="mrow")
    table(_TMD, reg("km1"))
    e.assign("s", BinOp("add", reg("t1"), reg("t2")))
    e.store("dcur", reg("k"), reg("s"), alias="drow")
    e.load("t1", "dcur", reg("km1"), alias="drow")
    table(_TDD, reg("km1"))
    e.assign("s", BinOp("add", reg("t1"), reg("t2")))
    e.cond_store_max_site("d_dd", "dcur", reg("k"), reg("s"), "csc",
                          alias="drow")
    # ---- local exit -----------------------------------------------------
    e.assign("t2", BinOp("add", reg("k"), const(config.table_offset(_END))))
    e.load("t1", "hmm", reg("t2"))
    e.assign("s", BinOp("add", reg("mc"), reg("t1")))
    e.max_site("exit_max", "best", reg("s"))
    e.assign("k", BinOp("add", reg("k"), const(1)))
    e.jump("inner.head")

    e.start("inner.end")
    # rotate rows: prev <-> cur
    for prev, cur in (("mprev", "mcur"), ("iprev", "icur"), ("dprev", "dcur")):
        e.assign("tmp", reg(prev))
        e.assign(prev, reg(cur))
        e.assign(cur, reg("tmp"))
    e.assign("i", BinOp("add", reg("i"), const(1)))
    e.jump("outer.head")

    e.start("done")
    e.store("out", const(0), reg("best"))
    e.halt()
    return e.build()


HARNESS = KernelHarness("p7_viterbi", build)


def run(
    variant: str,
    hmm: ProfileHmm,
    seq: Sequence,
    trace: Trace | list[TraceEvent] | None = None,
) -> int:
    """Execute the kernel; must equal :func:`repro.bio.hmm.viterbi_score`."""
    if seq.alphabet != hmm.alphabet:
        raise HmmError("sequence alphabet does not match the model")
    if len(seq) == 0:
        raise HmmError("cannot score an empty sequence")
    config = ViterbiConfig(
        length=hmm.length, alphabet_size=len(hmm.alphabet)
    )
    neg_row = [NEG_INF_SCORE] * hmm.length
    segments = {
        "seq": list(seq.codes),
        "hmm": pack_hmm(hmm),
        "mprev": list(neg_row),
        "iprev": list(neg_row),
        "dprev": list(neg_row),
        "mcur": list(neg_row),
        "icur": list(neg_row),
        "dcur": list(neg_row),
        "out": [0],
    }
    params = {"n": len(seq)}
    return HARNESS.run(variant, config, segments, params, trace=trace)
