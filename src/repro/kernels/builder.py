"""Helpers for authoring kernels in IR.

The :class:`Emitter` removes the boilerplate of building explicit basic
blocks, and centralises the *conditional-assignment site* idioms the
paper studies:

* :meth:`Emitter.max_site` — ``if (dst < other) dst = other`` with the
  operands in registers;
* :meth:`Emitter.cond_store_max_site` — ``if (mem[i] < value) mem[i] =
  value``, the array-reference form found in real HMMER/Clustalw C code
  that defeats compiler if-conversion (a conditional store cannot be
  speculated) but that a human rewrites as load/max/unconditional-store.

Each site emits one of three shapes depending on ``variant``:
``baseline`` (compare + conditional branch), ``hand_max`` (the proposed
``max`` instruction), or ``hand_isel`` (compare + ``isel``).
"""

from __future__ import annotations

from repro.compiler.ir import (
    Assign,
    Block,
    Branch,
    Const,
    Expr,
    Function,
    Halt,
    Jump,
    Load,
    MaxSel,
    Operand,
    Reg,
    Select,
    Statement,
    Store,
)
from repro.errors import CompilerError

#: Code-generation variants for author-controlled sites.
VARIANTS = ("baseline", "hand_max", "hand_isel")


class Emitter:
    """Sequentially build the blocks of one IR function.

    ``hand_sites`` restricts which sites the ``hand_*`` variants convert:
    sites outside the set keep their baseline branchy shape, modelling
    the "less obvious places" a human missed by inspection (§VI-A). When
    ``hand_sites`` is None the hand variants convert every site.
    """

    def __init__(
        self,
        name: str,
        params: list[str],
        variant: str,
        hand_sites: set[str] | None = None,
    ) -> None:
        if variant not in VARIANTS:
            raise CompilerError(
                f"unknown kernel variant {variant!r}; expected {VARIANTS}"
            )
        self.name = name
        self.params = params
        self.variant = variant
        self.hand_sites = hand_sites
        self.blocks: list[Block] = []
        self._current: Block | None = Block("entry")
        self._label_counter = 0

    def _site_variant(self, site: str) -> str:
        """Effective variant for one site (hand may have missed it)."""
        if self.variant == "baseline":
            return "baseline"
        if self.hand_sites is not None and site not in self.hand_sites:
            return "baseline"
        return self.variant

    # -- low-level plumbing ------------------------------------------------

    def fresh_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}.{self._label_counter}"

    def _require_block(self) -> Block:
        if self._current is None:
            raise CompilerError("no open block; call start() first")
        return self._current

    def _close(self, terminator) -> None:
        block = self._require_block()
        block.terminator = terminator
        self.blocks.append(block)
        self._current = None

    def start(self, label: str) -> None:
        """Open a new block; implicitly fall through from the open one."""
        if self._current is not None:
            self._close(Jump(label))
        self._current = Block(label)

    def emit(self, statement: Statement) -> None:
        self._require_block().statements.append(statement)

    # -- statement sugar -----------------------------------------------------

    def assign(self, dst: str, expr: Expr) -> None:
        self.emit(Assign(dst, expr))

    def load(
        self, dst: str, base: str, offset: Operand, alias: str = "mem"
    ) -> None:
        self.emit(Load(dst, base, offset, alias=alias))

    def store(
        self, base: str, offset: Operand, value: Operand, alias: str = "mem"
    ) -> None:
        self.emit(Store(base, offset, value, alias=alias))

    def jump(self, label: str) -> None:
        self._close(Jump(label))

    def halt(self) -> None:
        self._close(Halt())

    def branch(
        self,
        cmp: str,
        left: Operand,
        right: Operand,
        then_label: str,
        else_label: str,
        site: str | None = None,
    ) -> None:
        self._close(Branch(cmp, left, right, then_label, else_label, site))

    # -- the paper's conditional-assignment sites -----------------------------

    def max_site(self, site: str, dst: str, other: Operand) -> None:
        """``if (dst < other) dst = other`` in the selected variant."""
        variant = self._site_variant(site)
        if variant == "hand_max":
            self.emit(MaxSel(dst, Reg(dst), other))
            return
        if variant == "hand_isel":
            self.emit(
                Select(dst, "lt", Reg(dst), other, other, Reg(dst))
            )
            return
        then_label = self.fresh_label(f"{site}.then")
        cont_label = self.fresh_label(f"{site}.cont")
        self.branch("lt", Reg(dst), other, then_label, cont_label, site=site)
        self.start(then_label)
        self.assign(dst, other)
        self.start(cont_label)

    def cond_store_max_site(
        self,
        site: str,
        base: str,
        offset: Operand,
        value: Operand,
        scratch: str,
        alias: str = "mem",
    ) -> None:
        """``if (mem[base+offset] < value) mem[base+offset] = value``.

        The baseline shape is the HMMER2-style conditional store, which
        if-conversion must refuse. The hand variants are the human
        rewrite: load once, ``max``/``isel``, store unconditionally —
        legal only because the author knows an always-store of the
        maximum is equivalent.
        """
        variant = self._site_variant(site)
        self.load(scratch, base, offset, alias=alias)
        if variant == "baseline":
            then_label = self.fresh_label(f"{site}.then")
            cont_label = self.fresh_label(f"{site}.cont")
            self.branch(
                "lt", Reg(scratch), value, then_label, cont_label, site=site
            )
            self.start(then_label)
            self.store(base, offset, value, alias=alias)
            self.start(cont_label)
            return
        if variant == "hand_max":
            self.emit(MaxSel(scratch, Reg(scratch), value))
        else:
            self.emit(
                Select(
                    scratch, "lt", Reg(scratch), value, value, Reg(scratch)
                )
            )
        self.store(base, offset, Reg(scratch), alias=alias)

    # -- loop helpers ----------------------------------------------------------

    def counted_loop_head(
        self,
        label_stem: str,
        counter: str,
        limit: Operand,
        body_label: str,
        exit_label: str,
    ) -> str:
        """Close the current block into a ``while counter < limit`` head.

        Returns the head label so the body can jump back to it.
        """
        head_label = f"{label_stem}.head"
        self.start(head_label)
        self.branch("lt", Reg(counter), limit, body_label, exit_label)
        return head_label

    # -- finalisation -----------------------------------------------------------

    def build(self) -> Function:
        if self._current is not None:
            self._close(Halt())
        return Function(self.name, self.params, self.blocks)


def const(value: int) -> Const:
    """Shorthand for :class:`Const`."""
    return Const(value)


def reg(name: str) -> Reg:
    """Shorthand for :class:`Reg`."""
    return Reg(name)
