"""Runtime guard toggles (shared by the ISA and uarch layers).

Three environment variables harden a run against wrong numbers and
hangs; all are off by default so the hot paths stay untouched:

``REPRO_GUARDS``
    Master toggle (``1``/``on``/``true``/``yes``). Enables the
    core-model invariant checks (:mod:`repro.uarch.guards`) after every
    simulation, and upgrades interpreter step-budget exhaustion from a
    generic :class:`~repro.errors.InterpreterError` to a structured
    :class:`~repro.errors.GuardError` carrying the trip context. Cheap
    enough for CI — the checks are O(counters), not O(trace).
``REPRO_MAX_STEPS``
    Hard ceiling on dynamic instructions per interpreter run,
    enforced whenever set (guards toggle not required). A runaway
    kernel (infinite loop, broken branch target) trips a
    :class:`GuardError` instead of burning a worker's deadline.
``REPRO_MAX_MEMORY_WORDS``
    Hard ceiling on simulated-memory size, enforced whenever set. A
    driver asking for an absurd memory fails fast instead of OOM'ing
    the host.

This module lives at the package root because both ``repro.isa`` and
``repro.uarch`` consult it; it imports nothing from either.
"""

from __future__ import annotations

import os

from repro.errors import GuardError

GUARDS_ENV = "REPRO_GUARDS"
MAX_STEPS_ENV = "REPRO_MAX_STEPS"
MAX_MEMORY_ENV = "REPRO_MAX_MEMORY_WORDS"

_ON_VALUES = {"1", "on", "true", "yes"}


def guards_enabled() -> bool:
    """Whether ``REPRO_GUARDS`` asks for invariant checking."""
    return os.environ.get(GUARDS_ENV, "").strip().lower() in _ON_VALUES


def _positive_int_env(name: str) -> int | None:
    """A positive-integer ceiling from the environment, or ``None``.

    A malformed or non-positive value is itself a guard trip: a ceiling
    the operator set but that cannot take effect is worse than none.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise GuardError(
            f"{name} must be a positive integer",
            guard="env", context={"variable": name, "value": raw},
        ) from None
    if value <= 0:
        raise GuardError(
            f"{name} must be positive",
            guard="env", context={"variable": name, "value": raw},
        )
    return value


def step_ceiling() -> int | None:
    """The ``REPRO_MAX_STEPS`` watchdog ceiling, if set."""
    return _positive_int_env(MAX_STEPS_ENV)


def memory_ceiling() -> int | None:
    """The ``REPRO_MAX_MEMORY_WORDS`` watchdog ceiling, if set."""
    return _positive_int_env(MAX_MEMORY_ENV)
