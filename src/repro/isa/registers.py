"""Architected register state for the mini-ISA.

The register file mirrors the PowerPC user-level integer state the
kernels need: 32 general-purpose registers and the 32-bit condition
register, viewed as eight 4-bit fields (``cr0`` ... ``cr7``) each holding
``lt``/``gt``/``eq`` bits, exactly the encoding ``cmp``/``isel`` use
(§V of the paper).
"""

from __future__ import annotations

from repro.errors import InterpreterError

#: Number of general-purpose registers.
NUM_GPRS = 32
#: Number of condition-register fields.
NUM_CR_FIELDS = 8

#: Bit indices within a CR field.
CR_LT, CR_GT, CR_EQ = 0, 1, 2


class RegisterFile:
    """GPRs plus condition-register fields.

    Values are Python ints (the interpreter is width-agnostic; kernels
    stay far inside 64-bit range). ``r0`` is an ordinary register here —
    the special PowerPC r0-as-zero addressing quirk is not modelled.
    """

    __slots__ = ("gpr", "cr")

    def __init__(self) -> None:
        self.gpr = [0] * NUM_GPRS
        self.cr = [[False, False, False] for _ in range(NUM_CR_FIELDS)]

    def read(self, index: int) -> int:
        """Read GPR ``index``."""
        if not 0 <= index < NUM_GPRS:
            raise InterpreterError(f"GPR index {index} out of range")
        return self.gpr[index]

    def write(self, index: int, value: int) -> None:
        """Write GPR ``index``."""
        if not 0 <= index < NUM_GPRS:
            raise InterpreterError(f"GPR index {index} out of range")
        self.gpr[index] = value

    def set_compare(self, field: int, a: int, b: int) -> None:
        """Set CR ``field`` from comparing ``a`` with ``b`` (like cmp)."""
        if not 0 <= field < NUM_CR_FIELDS:
            raise InterpreterError(f"CR field {field} out of range")
        self.cr[field][CR_LT] = a < b
        self.cr[field][CR_GT] = a > b
        self.cr[field][CR_EQ] = a == b

    def cr_bit(self, field: int, bit: int) -> bool:
        """Read one bit of a CR field (CR_LT / CR_GT / CR_EQ)."""
        if not 0 <= field < NUM_CR_FIELDS:
            raise InterpreterError(f"CR field {field} out of range")
        if not 0 <= bit <= 2:
            raise InterpreterError(f"CR bit {bit} out of range")
        return self.cr[field][bit]

    def reset(self) -> None:
        """Zero all architected state."""
        for i in range(NUM_GPRS):
            self.gpr[i] = 0
        for field in self.cr:
            field[0] = field[1] = field[2] = False
