"""A PowerPC-like mini-ISA with the paper's ``max``/``isel`` extensions.

Provides the instruction set, a program builder and text assembler, a
word-addressed memory, a functional interpreter, and dynamic-trace
records consumed by :mod:`repro.uarch`.
"""

from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Op, Unit, validate
from repro.isa.interpreter import Machine, run_program
from repro.isa.memory import Memory
from repro.isa.program import Program, ProgramBuilder
from repro.isa.registers import CR_EQ, CR_GT, CR_LT, RegisterFile
from repro.isa.tracestore import (
    load_trace,
    load_trace_columnar,
    save_trace,
    save_trace_v2,
)
from repro.isa.trace import (
    Trace,
    TraceEvent,
    TraceStats,
    opcode_histogram,
    trace_statistics,
)

__all__ = [
    "assemble",
    "Instruction",
    "Op",
    "Unit",
    "validate",
    "Machine",
    "run_program",
    "Memory",
    "Program",
    "ProgramBuilder",
    "CR_EQ",
    "CR_GT",
    "CR_LT",
    "RegisterFile",
    "load_trace",
    "load_trace_columnar",
    "save_trace",
    "save_trace_v2",
    "Trace",
    "TraceEvent",
    "TraceStats",
    "opcode_histogram",
    "trace_statistics",
]
