"""Functional interpreter for the mini-ISA.

The :class:`Machine` executes a :class:`~repro.isa.program.Program`
against a :class:`~repro.isa.memory.Memory`, producing architecturally
correct results *and* (optionally) a dynamic trace for the core model —
the same role SystemSim plays in the paper: functional execution first,
timing layered on top.
"""

from __future__ import annotations

from repro.errors import InterpreterError
from repro.isa.instructions import Op
from repro.isa.memory import Memory
from repro.isa.program import Program
from repro.isa.registers import RegisterFile
from repro.isa.trace import TraceEvent

#: Default step budget; kernels here are far smaller.
DEFAULT_MAX_STEPS = 50_000_000


class Machine:
    """Architected state + fetch/execute loop.

    Parameters
    ----------
    program:
        The sealed program to run.
    memory:
        Data memory (shared with the driver that set up inputs).
    """

    def __init__(self, program: Program, memory: Memory) -> None:
        self.program = program
        self.memory = memory
        self.registers = RegisterFile()
        self.pc = 0
        self.steps = 0
        self.halted = False

    def run(
        self,
        trace: list[TraceEvent] | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> int:
        """Execute until ``halt`` or the step budget expires.

        When ``trace`` is a list, one :class:`TraceEvent` per committed
        instruction is appended to it. Returns the number of dynamic
        instructions executed by this call.
        """
        if self.halted:
            raise InterpreterError("machine already halted")
        instructions = self.program.instructions
        targets = self.program.targets
        registers = self.registers
        gpr = registers.gpr
        memory = self.memory
        executed = 0
        pc = self.pc
        program_length = len(instructions)
        collect = trace is not None

        while executed < max_steps:
            if not 0 <= pc < program_length:
                raise InterpreterError(f"PC {pc} out of program range")
            instruction = instructions[pc]
            op = instruction.op
            taken = False
            address: int | None = None
            next_pc = pc + 1

            if op is Op.ADD:
                gpr[instruction.rd] = gpr[instruction.ra] + gpr[instruction.rb]
            elif op is Op.ADDI:
                gpr[instruction.rd] = gpr[instruction.ra] + instruction.imm
            elif op is Op.SUB:
                gpr[instruction.rd] = gpr[instruction.ra] - gpr[instruction.rb]
            elif op is Op.SUBI:
                gpr[instruction.rd] = gpr[instruction.ra] - instruction.imm
            elif op is Op.LD:
                address = gpr[instruction.ra] + instruction.imm
                gpr[instruction.rd] = memory.load(address)
            elif op is Op.LDX:
                address = gpr[instruction.ra] + gpr[instruction.rb]
                gpr[instruction.rd] = memory.load(address)
            elif op is Op.ST:
                address = gpr[instruction.ra] + instruction.imm
                memory.store(address, gpr[instruction.rd])
            elif op is Op.STX:
                address = gpr[instruction.ra] + gpr[instruction.rb]
                memory.store(address, gpr[instruction.rd])
            elif op is Op.CMP:
                registers.set_compare(
                    instruction.crf, gpr[instruction.ra], gpr[instruction.rb]
                )
            elif op is Op.CMPI:
                registers.set_compare(
                    instruction.crf, gpr[instruction.ra], instruction.imm
                )
            elif op is Op.BC:
                bit = registers.cr_bit(instruction.crf, instruction.crbit)
                taken = bit == instruction.want
                if taken:
                    next_pc = targets[pc]
            elif op is Op.B:
                taken = True
                next_pc = targets[pc]
            elif op is Op.AND:
                gpr[instruction.rd] = gpr[instruction.ra] & gpr[instruction.rb]
            elif op is Op.OR:
                gpr[instruction.rd] = gpr[instruction.ra] | gpr[instruction.rb]
            elif op is Op.MAX:
                a, b = gpr[instruction.ra], gpr[instruction.rb]
                gpr[instruction.rd] = a if a > b else b
            elif op is Op.ISEL:
                bit = registers.cr_bit(instruction.crf, instruction.crbit)
                gpr[instruction.rd] = (
                    gpr[instruction.ra] if bit else gpr[instruction.rb]
                )
            elif op is Op.LI:
                gpr[instruction.rd] = instruction.imm
            elif op is Op.MR:
                gpr[instruction.rd] = gpr[instruction.ra]
            elif op is Op.MUL:
                gpr[instruction.rd] = gpr[instruction.ra] * gpr[instruction.rb]
            elif op is Op.MULI:
                gpr[instruction.rd] = gpr[instruction.ra] * instruction.imm
            elif op is Op.NEG:
                gpr[instruction.rd] = -gpr[instruction.ra]
            elif op is Op.NOP:
                pass
            elif op is Op.HALT:
                self.halted = True
                next_pc = pc
            else:  # pragma: no cover - exhaustive over Op
                raise InterpreterError(f"unimplemented opcode {op!r}")

            executed += 1
            if collect:
                trace.append(
                    TraceEvent(pc, instruction, taken, next_pc, address)
                )
            if self.halted:
                break
            pc = next_pc

        self.pc = pc
        self.steps += executed
        if not self.halted and executed >= max_steps:
            raise InterpreterError(
                f"step budget of {max_steps} exhausted at PC {pc}"
            )
        return executed


def run_program(
    program: Program,
    memory: Memory,
    initial_registers: dict[int, int] | None = None,
    trace: list[TraceEvent] | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Machine:
    """Convenience wrapper: build a machine, preset registers, run it."""
    machine = Machine(program, memory)
    for index, value in (initial_registers or {}).items():
        machine.registers.write(index, value)
    machine.run(trace=trace, max_steps=max_steps)
    return machine
