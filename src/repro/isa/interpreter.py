"""Functional interpreter for the mini-ISA.

The :class:`Machine` executes a :class:`~repro.isa.program.Program`
against a :class:`~repro.isa.memory.Memory`, producing architecturally
correct results *and* (optionally) a dynamic trace for the core model —
the same role SystemSim plays in the paper: functional execution first,
timing layered on top.

Execution is *predecoded*: on the first :meth:`Machine.run` each static
instruction is compiled into a closure with its operand slots, branch
targets and bound methods baked in, so the hot loop is one indexed
lookup and one call per dynamic instruction instead of a 20-way opcode
chain with repeated attribute lookups. Traced runs emit straight into
the columnar :class:`~repro.isa.trace.Trace` form — five bound
``array.append`` calls per instruction, with the per-pc static id and
both flag bytes (taken / not-taken) precomputed, so no intermediate
:class:`TraceEvent` objects are built. Passing a plain list still
collects object-form events, slot-filled from per-instruction
prototypes; the two emissions are equivalent (the golden-trace tests
assert this).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import InterpreterError, InterpreterGuardError
from repro.guards import guards_enabled, step_ceiling
from repro.isa.instructions import Op
from repro.isa.memory import Memory
from repro.isa.program import Program
from repro.isa.registers import RegisterFile
from repro.isa.trace import F_TAKEN, NO_VALUE, Trace, TraceEvent

#: Default step budget; kernels here are far smaller.
DEFAULT_MAX_STEPS = 50_000_000

#: A decoded step: () -> (next_pc, taken, address). ``None`` marks HALT.
_Step = Callable[[], tuple[int, bool, "int | None"]]


def _decode(
    program: Program, registers: RegisterFile, memory: Memory
) -> list[_Step | None]:
    """Compile each static instruction into a zero-argument closure.

    Closures capture the machine's register list and memory accessors
    directly (no per-step attribute traffic) and return the
    ``(next_pc, taken, address)`` triple the run loop and the tracer
    need. ``HALT`` decodes to ``None`` so the loop can special-case it
    with a single identity check.
    """
    gpr = registers.gpr
    set_compare = registers.set_compare
    cr_bit = registers.cr_bit
    load = memory.load
    store = memory.store
    targets = program.targets
    decoded: list[_Step | None] = []

    for pc, ins in enumerate(program.instructions):
        op = ins.op
        nxt = pc + 1
        rd, ra, rb, imm = ins.rd, ins.ra, ins.rb, ins.imm
        crf, crbit, want = ins.crf, ins.crbit, ins.want
        # Fall-through result shared by every non-memory, non-branch
        # step at this pc: one preallocated tuple, never rebuilt.
        R = (nxt, False, None)
        step: _Step | None
        if op is Op.ADD:
            def step(gpr=gpr, rd=rd, ra=ra, rb=rb, R=R):
                gpr[rd] = gpr[ra] + gpr[rb]
                return R
        elif op is Op.ADDI:
            def step(gpr=gpr, rd=rd, ra=ra, imm=imm, R=R):
                gpr[rd] = gpr[ra] + imm
                return R
        elif op is Op.SUB:
            def step(gpr=gpr, rd=rd, ra=ra, rb=rb, R=R):
                gpr[rd] = gpr[ra] - gpr[rb]
                return R
        elif op is Op.SUBI:
            def step(gpr=gpr, rd=rd, ra=ra, imm=imm, R=R):
                gpr[rd] = gpr[ra] - imm
                return R
        elif op is Op.LD:
            def step(gpr=gpr, rd=rd, ra=ra, imm=imm, nxt=nxt, load=load):
                address = gpr[ra] + imm
                gpr[rd] = load(address)
                return (nxt, False, address)
        elif op is Op.LDX:
            def step(gpr=gpr, rd=rd, ra=ra, rb=rb, nxt=nxt, load=load):
                address = gpr[ra] + gpr[rb]
                gpr[rd] = load(address)
                return (nxt, False, address)
        elif op is Op.ST:
            def step(gpr=gpr, rd=rd, ra=ra, imm=imm, nxt=nxt, store=store):
                address = gpr[ra] + imm
                store(address, gpr[rd])
                return (nxt, False, address)
        elif op is Op.STX:
            def step(gpr=gpr, rd=rd, ra=ra, rb=rb, nxt=nxt, store=store):
                address = gpr[ra] + gpr[rb]
                store(address, gpr[rd])
                return (nxt, False, address)
        elif op is Op.CMP:
            def step(gpr=gpr, crf=crf, ra=ra, rb=rb, R=R, cmp=set_compare):
                cmp(crf, gpr[ra], gpr[rb])
                return R
        elif op is Op.CMPI:
            def step(gpr=gpr, crf=crf, ra=ra, imm=imm, R=R, cmp=set_compare):
                cmp(crf, gpr[ra], imm)
                return R
        elif op is Op.BC:
            taken_result = (targets[pc], True, None)

            def step(crf=crf, crbit=crbit, want=want, bit=cr_bit,
                     T=taken_result, NT=R):
                return T if bit(crf, crbit) == want else NT
        elif op is Op.B:
            taken_result = (targets[pc], True, None)

            def step(T=taken_result):
                return T
        elif op is Op.AND:
            def step(gpr=gpr, rd=rd, ra=ra, rb=rb, R=R):
                gpr[rd] = gpr[ra] & gpr[rb]
                return R
        elif op is Op.OR:
            def step(gpr=gpr, rd=rd, ra=ra, rb=rb, R=R):
                gpr[rd] = gpr[ra] | gpr[rb]
                return R
        elif op is Op.MAX:
            def step(gpr=gpr, rd=rd, ra=ra, rb=rb, R=R):
                a = gpr[ra]
                b = gpr[rb]
                gpr[rd] = a if a > b else b
                return R
        elif op is Op.ISEL:
            def step(gpr=gpr, rd=rd, ra=ra, rb=rb, crf=crf, crbit=crbit,
                     R=R, bit=cr_bit):
                gpr[rd] = gpr[ra] if bit(crf, crbit) else gpr[rb]
                return R
        elif op is Op.LI:
            def step(gpr=gpr, rd=rd, imm=imm, R=R):
                gpr[rd] = imm
                return R
        elif op is Op.MR:
            def step(gpr=gpr, rd=rd, ra=ra, R=R):
                gpr[rd] = gpr[ra]
                return R
        elif op is Op.MUL:
            def step(gpr=gpr, rd=rd, ra=ra, rb=rb, R=R):
                gpr[rd] = gpr[ra] * gpr[rb]
                return R
        elif op is Op.MULI:
            def step(gpr=gpr, rd=rd, ra=ra, imm=imm, R=R):
                gpr[rd] = gpr[ra] * imm
                return R
        elif op is Op.NEG:
            def step(gpr=gpr, rd=rd, ra=ra, R=R):
                gpr[rd] = -gpr[ra]
                return R
        elif op is Op.NOP:
            def step(R=R):
                return R
        elif op is Op.HALT:
            step = None
        else:  # pragma: no cover - exhaustive over Op
            raise InterpreterError(f"unimplemented opcode {op!r}")
        decoded.append(step)
    return decoded


def _event_prototypes(program: Program) -> list[tuple]:
    """Static :class:`TraceEvent` fields per pc, for fast slot filling."""
    protos = []
    for pc, ins in enumerate(program.instructions):
        protos.append((
            pc, ins.op, ins.unit, ins.latency, ins.occupancy,
            ins.destination_register(), ins.source_registers(),
            ins.is_branch, ins.is_conditional_branch,
            ins.is_load, ins.is_store,
        ))
    return protos


class Machine:
    """Architected state + fetch/execute loop.

    Parameters
    ----------
    program:
        The sealed program to run.
    memory:
        Data memory (shared with the driver that set up inputs).
    """

    def __init__(self, program: Program, memory: Memory) -> None:
        self.program = program
        self.memory = memory
        self.registers = RegisterFile()
        self.pc = 0
        self.steps = 0
        self.halted = False
        self._decoded: list[_Step | None] | None = None
        self._protos: list[tuple] | None = None

    def run(
        self,
        trace: Trace | list[TraceEvent] | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> int:
        """Execute until ``halt`` or the step budget expires.

        When ``trace`` is a columnar :class:`Trace`, one row per
        committed instruction is appended to its columns; when it is a
        list, one :class:`TraceEvent` is appended instead. Returns the
        number of dynamic instructions executed by this call.

        Watchdog: a ``REPRO_MAX_STEPS`` ceiling below ``max_steps``
        tightens the budget, and exhausting a watchdogged budget (also
        when ``REPRO_GUARDS`` is on) raises a structured
        :class:`~repro.errors.InterpreterGuardError` instead of the generic
        :class:`InterpreterError` — a runaway kernel fails fast with
        evidence rather than hanging its worker.
        """
        if self.halted:
            raise InterpreterError("machine already halted")
        ceiling = step_ceiling()
        watchdog = ceiling is not None or guards_enabled()
        if ceiling is not None and ceiling < max_steps:
            max_steps = ceiling
        if self._decoded is None:
            self._decoded = _decode(self.program, self.registers, self.memory)
        decoded = self._decoded
        program_length = len(decoded)
        executed = 0
        pc = self.pc

        if trace is None:
            while executed < max_steps:
                if not 0 <= pc < program_length:
                    raise InterpreterError(f"PC {pc} out of program range")
                step = decoded[pc]
                if step is None:  # HALT
                    executed += 1
                    self.halted = True
                    break
                pc, _, _ = step()
                executed += 1
        elif isinstance(trace, Trace):
            trace._require_root()
            static = trace.static
            sid_of = [
                static.intern_instruction(ins)
                for ins in self.program.instructions
            ]
            flags_nt = [static.flags[sid] for sid in sid_of]
            flags_t = [flags | F_TAKEN for flags in flags_nt]
            pc_append = trace.pc.append
            sid_append = trace.sid.append
            flags_append = trace.flags.append
            next_append = trace.next_pc.append
            addr_append = trace.address.append
            while executed < max_steps:
                if not 0 <= pc < program_length:
                    raise InterpreterError(f"PC {pc} out of program range")
                step = decoded[pc]
                if step is None:  # HALT: event points back at itself
                    next_pc, taken, address = pc, False, None
                    self.halted = True
                else:
                    next_pc, taken, address = step()
                pc_append(pc)
                sid_append(sid_of[pc])
                flags_append(flags_t[pc] if taken else flags_nt[pc])
                next_append(next_pc)
                addr_append(NO_VALUE if address is None else address)
                executed += 1
                if self.halted:
                    break
                pc = next_pc
        else:
            if self._protos is None:
                self._protos = _event_prototypes(self.program)
            protos = self._protos
            append = trace.append
            new = TraceEvent.__new__
            while executed < max_steps:
                if not 0 <= pc < program_length:
                    raise InterpreterError(f"PC {pc} out of program range")
                step = decoded[pc]
                if step is None:  # HALT: event points back at itself
                    next_pc, taken, address = pc, False, None
                    self.halted = True
                else:
                    next_pc, taken, address = step()
                event = new(TraceEvent)
                (event.pc, event.op, event.unit, event.latency,
                 event.occupancy, event.dst, event.srcs, event.is_branch,
                 event.is_conditional, event.is_load,
                 event.is_store) = protos[pc]
                event.taken = taken
                event.next_pc = next_pc
                event.address = address
                append(event)
                executed += 1
                if self.halted:
                    break
                pc = next_pc

        self.pc = pc
        self.steps += executed
        if not self.halted and executed >= max_steps:
            if watchdog:
                raise InterpreterGuardError(
                    f"step budget of {max_steps} exhausted without HALT "
                    "(runaway or infinite-loop kernel)",
                    guard="interpreter.steps",
                    context={
                        "pc": pc,
                        "executed": executed,
                        "budget": max_steps,
                        "program_length": program_length,
                    },
                )
            raise InterpreterError(
                f"step budget of {max_steps} exhausted at PC {pc}"
            )
        return executed


    def run_segments(
        self,
        segment_events: int,
        max_steps: int = DEFAULT_MAX_STEPS,
    ):
        """Execute like a traced :meth:`run`, yielding bounded segments.

        A generator that produces the identical committed-instruction
        stream as ``run(trace=Trace())``, but as a sequence of fresh
        columnar :class:`Trace` segments of at most ``segment_events``
        events each — the whole trace is never resident. Every segment
        shares one static table (interned once, in program order, so
        the concatenation is column-for-column identical to the
        monolithic trace), which also lets streaming consumers reuse
        their per-static metadata across segments.

        Architected state (``pc``/``steps``/``halted``) is committed at
        every segment boundary, and the watchdog semantics match
        :meth:`run`: the step budget spans the whole run, and
        exhausting it raises out of the generator.
        """
        if segment_events < 1:
            raise InterpreterError("segment_events must be >= 1")
        if self.halted:
            raise InterpreterError("machine already halted")
        ceiling = step_ceiling()
        watchdog = ceiling is not None or guards_enabled()
        if ceiling is not None and ceiling < max_steps:
            max_steps = ceiling
        if self._decoded is None:
            self._decoded = _decode(self.program, self.registers, self.memory)
        decoded = self._decoded
        program_length = len(decoded)
        static = Trace().static
        sid_of = [
            static.intern_instruction(ins)
            for ins in self.program.instructions
        ]
        flags_nt = [static.flags[sid] for sid in sid_of]
        flags_t = [flags | F_TAKEN for flags in flags_nt]
        executed = 0
        pc = self.pc

        while True:
            segment = Trace()
            segment.static = static
            pc_append = segment.pc.append
            sid_append = segment.sid.append
            flags_append = segment.flags.append
            next_append = segment.next_pc.append
            addr_append = segment.address.append
            emitted = 0
            while emitted < segment_events and executed < max_steps:
                if not 0 <= pc < program_length:
                    raise InterpreterError(f"PC {pc} out of program range")
                step = decoded[pc]
                if step is None:  # HALT: event points back at itself
                    next_pc, taken, address = pc, False, None
                    self.halted = True
                else:
                    next_pc, taken, address = step()
                pc_append(pc)
                sid_append(sid_of[pc])
                flags_append(flags_t[pc] if taken else flags_nt[pc])
                next_append(next_pc)
                addr_append(NO_VALUE if address is None else address)
                executed += 1
                emitted += 1
                if self.halted:
                    break
                pc = next_pc
            self.pc = pc
            self.steps += emitted
            if emitted:
                yield segment
            if self.halted:
                return
            if executed >= max_steps:
                if watchdog:
                    raise InterpreterGuardError(
                        f"step budget of {max_steps} exhausted without "
                        "HALT (runaway or infinite-loop kernel)",
                        guard="interpreter.steps",
                        context={
                            "pc": pc,
                            "executed": executed,
                            "budget": max_steps,
                            "program_length": program_length,
                        },
                    )
                raise InterpreterError(
                    f"step budget of {max_steps} exhausted at PC {pc}"
                )


def run_program(
    program: Program,
    memory: Memory,
    initial_registers: dict[int, int] | None = None,
    trace: Trace | list[TraceEvent] | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Machine:
    """Convenience wrapper: build a machine, preset registers, run it."""
    machine = Machine(program, memory)
    for index, value in (initial_registers or {}).items():
        machine.registers.write(index, value)
    machine.run(trace=trace, max_steps=max_steps)
    return machine
