"""A small text assembler for the mini-ISA.

Accepts the same syntax :meth:`Instruction.render` produces, so
``assemble(program.listing())`` round-trips. Supported forms::

    loop:
        li r3, 5
        addi r4, r3, -1
        cmp cr0, r3, r4
        bt cr0[0], loop        # branch if bit 0 (lt) set
        bf cr0[2], done        # branch if bit 2 (eq) clear
        ld r5, 4(r6)
        ldx r5, r6, r7
        st r5, 0(r6)
        stx r5, r6, r7
        max r3, r4, r5
        isel r3, r4, r5, cr0, 1
        b loop
        halt

Comments start with ``#``; blank lines are ignored.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction, Op
from repro.isa.program import Program, ProgramBuilder

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_REG_RE = re.compile(r"^r(\d+)$")
_CRF_RE = re.compile(r"^cr(\d+)$")
_CRBIT_RE = re.compile(r"^cr(\d+)\[(\d)\]$")
_MEM_RE = re.compile(r"^(-?\d+)\(r(\d+)\)$")


def _reg(token: str) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise AssemblyError(f"expected register, got {token!r}")
    index = int(match.group(1))
    if index > 31:
        raise AssemblyError(f"register {token!r} out of range")
    return index


def _crf(token: str) -> int:
    match = _CRF_RE.match(token)
    if not match:
        raise AssemblyError(f"expected CR field, got {token!r}")
    return int(match.group(1))


def _imm(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"expected immediate, got {token!r}") from None


def _parse_line(mnemonic: str, operands: list[str]) -> Instruction:
    if mnemonic == "li":
        return Instruction(Op.LI, rd=_reg(operands[0]), imm=_imm(operands[1]))
    if mnemonic in ("mr", "neg"):
        op = Op.MR if mnemonic == "mr" else Op.NEG
        return Instruction(op, rd=_reg(operands[0]), ra=_reg(operands[1]))
    if mnemonic in ("add", "sub", "mul", "and", "or", "max", "ldx"):
        op = Op[mnemonic.upper()]
        return Instruction(
            op, rd=_reg(operands[0]), ra=_reg(operands[1]),
            rb=_reg(operands[2]),
        )
    if mnemonic == "stx":
        return Instruction(
            Op.STX, rd=_reg(operands[0]), ra=_reg(operands[1]),
            rb=_reg(operands[2]),
        )
    if mnemonic in ("addi", "subi", "muli"):
        op = Op[mnemonic.upper()]
        return Instruction(
            op, rd=_reg(operands[0]), ra=_reg(operands[1]),
            imm=_imm(operands[2]),
        )
    if mnemonic == "isel":
        return Instruction(
            Op.ISEL, rd=_reg(operands[0]), ra=_reg(operands[1]),
            rb=_reg(operands[2]), crf=_crf(operands[3]),
            crbit=_imm(operands[4]),
        )
    if mnemonic == "cmp":
        return Instruction(
            Op.CMP, crf=_crf(operands[0]), ra=_reg(operands[1]),
            rb=_reg(operands[2]),
        )
    if mnemonic == "cmpi":
        return Instruction(
            Op.CMPI, crf=_crf(operands[0]), ra=_reg(operands[1]),
            imm=_imm(operands[2]),
        )
    if mnemonic in ("ld", "st"):
        match = _MEM_RE.match(operands[1])
        if not match:
            raise AssemblyError(
                f"expected imm(reg) operand, got {operands[1]!r}"
            )
        op = Op.LD if mnemonic == "ld" else Op.ST
        return Instruction(
            op, rd=_reg(operands[0]), ra=int(match.group(2)),
            imm=int(match.group(1)),
        )
    if mnemonic == "b":
        return Instruction(Op.B, label=operands[0])
    if mnemonic in ("bt", "bf"):
        match = _CRBIT_RE.match(operands[0])
        if not match:
            raise AssemblyError(
                f"expected crN[bit] operand, got {operands[0]!r}"
            )
        return Instruction(
            Op.BC, crf=int(match.group(1)), crbit=int(match.group(2)),
            want=(mnemonic == "bt"), label=operands[1],
        )
    if mnemonic == "nop":
        return Instruction(Op.NOP)
    if mnemonic == "halt":
        return Instruction(Op.HALT)
    raise AssemblyError(f"unknown mnemonic {mnemonic!r}")


def assemble(text: str) -> Program:
    """Assemble ``text`` into a :class:`Program`."""
    builder = ProgramBuilder()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            builder.label(label_match.group(1))
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = (
            [token.strip() for token in parts[1].split(",")]
            if len(parts) > 1
            else []
        )
        try:
            builder.emit(_parse_line(mnemonic, operands))
        except IndexError:
            raise AssemblyError(
                f"line {line_no}: too few operands for {mnemonic!r}"
            ) from None
        except AssemblyError as error:
            raise AssemblyError(f"line {line_no}: {error}") from None
    return builder.build()
