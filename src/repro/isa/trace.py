"""Dynamic instruction traces.

The interpreter emits one :class:`TraceEvent` per committed instruction;
the micro-architectural core model consumes the stream. Events are
deliberately small (``__slots__``) because kernel traces run to hundreds
of thousands of entries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa.instructions import Instruction, Op, Unit


class TraceEvent:
    """One dynamically-executed instruction.

    Attributes
    ----------
    pc:
        Static instruction index.
    op / unit / latency:
        Copied from the static instruction for fast access.
    dst / srcs:
        Destination GPR (or None) and tuple of source GPRs.
    is_branch / is_conditional / taken / next_pc:
        Control-flow facts; ``next_pc`` is the actual successor.
    address:
        Word address for loads/stores, else None.
    """

    __slots__ = (
        "pc", "op", "unit", "latency", "occupancy", "dst", "srcs",
        "is_branch", "is_conditional", "taken", "next_pc",
        "is_load", "is_store", "address",
    )

    def __init__(
        self,
        pc: int,
        instruction: Instruction,
        taken: bool,
        next_pc: int,
        address: int | None,
    ) -> None:
        self.pc = pc
        self.op = instruction.op
        self.unit = instruction.unit
        self.latency = instruction.latency
        self.occupancy = instruction.occupancy
        self.dst = instruction.destination_register()
        self.srcs = instruction.source_registers()
        self.is_branch = instruction.is_branch
        self.is_conditional = instruction.is_conditional_branch
        self.taken = taken
        self.next_pc = next_pc
        self.is_load = instruction.is_load
        self.is_store = instruction.is_store
        self.address = address

    def __repr__(self) -> str:
        return (
            f"TraceEvent(pc={self.pc}, op={self.op.value}, "
            f"taken={self.taken}, next={self.next_pc})"
        )


@dataclass
class TraceStats:
    """Aggregate statistics of a trace (instruction mix, branches)."""

    instructions: int = 0
    branches: int = 0
    conditional_branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    fxu_ops: int = 0
    max_ops: int = 0
    isel_ops: int = 0
    cmp_ops: int = 0

    @property
    def branch_fraction(self) -> float:
        """Branches as a fraction of all instructions."""
        if self.instructions == 0:
            return 0.0
        return self.branches / self.instructions

    @property
    def taken_fraction(self) -> float:
        """Taken branches as a fraction of branches."""
        if self.branches == 0:
            return 0.0
        return self.taken_branches / self.branches

    @property
    def load_store_fraction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return (self.loads + self.stores) / self.instructions


def trace_statistics(events: list[TraceEvent]) -> TraceStats:
    """Compute :class:`TraceStats` over ``events``."""
    stats = TraceStats()
    for event in events:
        stats.instructions += 1
        if event.is_branch:
            stats.branches += 1
            if event.is_conditional:
                stats.conditional_branches += 1
            if event.taken:
                stats.taken_branches += 1
        if event.is_load:
            stats.loads += 1
        if event.is_store:
            stats.stores += 1
        if event.unit is Unit.FXU:
            stats.fxu_ops += 1
        if event.op is Op.MAX:
            stats.max_ops += 1
        elif event.op is Op.ISEL:
            stats.isel_ops += 1
        elif event.op in (Op.CMP, Op.CMPI):
            stats.cmp_ops += 1
    return stats


def opcode_histogram(events: list[TraceEvent]) -> Counter:
    """Dynamic opcode counts (useful for §VI path-length arguments)."""
    return Counter(event.op for event in events)
