"""Dynamic instruction traces.

Two representations share this module:

* :class:`TraceEvent` — one Python object per committed instruction.
  This is the historical interchange form; the v1 text tracestore, a
  few tests and ad-hoc tooling still speak it, and it remains the unit
  yielded when iterating or indexing a trace.
* :class:`Trace` — the **columnar** form and the simulation currency.
  Events live in parallel ``array`` columns (pc, static id, flags
  bitfield, next pc, address), and everything invariant per *static*
  instruction — opcode, unit class, latency, occupancy, destination,
  sources — is interned once in a per-trace static table and referenced
  by a small integer id. A million-event trace therefore costs
  29 bytes/event instead of one ~170-byte object (plus per-event
  attribute chasing) per event, and the core model's hot loop reads
  machine integers instead of Python attributes.

``Trace`` slicing is **zero-copy**: ``trace[a:b]`` returns a read-only
view sharing the parent's columns, which is what makes SMARTS-style
sampling (slice per window) free. Only a root trace accepts appends.
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.isa.instructions import (
    OP_INDEX,
    OP_LATENCY,
    OP_LIST,
    OP_OCCUPANCY,
    OP_UNIT,
    UNIT_INDEX,
    UNIT_LIST,
    Instruction,
    Op,
    Unit,
)

# -- flags bitfield ----------------------------------------------------------

#: Per-event flag bits. The low four are static (determined by the
#: opcode); TAKEN is the only dynamic bit. The core model and the
#: sampling warmer dispatch on this byte instead of five booleans.
F_BRANCH = 1
F_COND = 2
F_TAKEN = 4
F_LOAD = 8
F_STORE = 16

#: Static portion of the flags byte.
STATIC_FLAGS_MASK = F_BRANCH | F_COND | F_LOAD | F_STORE

#: Per-opcode static flags, indexed by dense op index.
OP_STATIC_FLAGS: tuple[int, ...] = tuple(
    (F_BRANCH if op in (Op.B, Op.BC) else 0)
    | (F_COND if op is Op.BC else 0)
    | (F_LOAD if op in (Op.LD, Op.LDX) else 0)
    | (F_STORE if op in (Op.ST, Op.STX) else 0)
    for op in OP_LIST
)

#: Sentinel for "no address" / "no destination" in integer columns.
NO_VALUE = -1


class TraceEvent:
    """One dynamically-executed instruction (object form).

    Attributes
    ----------
    pc:
        Static instruction index.
    op / unit / latency:
        Copied from the static instruction for fast access.
    dst / srcs:
        Destination GPR (or None) and tuple of source GPRs.
    is_branch / is_conditional / taken / next_pc:
        Control-flow facts; ``next_pc`` is the actual successor.
    address:
        Word address for loads/stores, else None.
    """

    __slots__ = (
        "pc", "op", "unit", "latency", "occupancy", "dst", "srcs",
        "is_branch", "is_conditional", "taken", "next_pc",
        "is_load", "is_store", "address",
    )

    def __init__(
        self,
        pc: int,
        instruction: Instruction,
        taken: bool,
        next_pc: int,
        address: int | None,
    ) -> None:
        self.pc = pc
        self.op = instruction.op
        self.unit = instruction.unit
        self.latency = instruction.latency
        self.occupancy = instruction.occupancy
        self.dst = instruction.destination_register()
        self.srcs = instruction.source_registers()
        self.is_branch = instruction.is_branch
        self.is_conditional = instruction.is_conditional_branch
        self.taken = taken
        self.next_pc = next_pc
        self.is_load = instruction.is_load
        self.is_store = instruction.is_store
        self.address = address

    def __repr__(self) -> str:
        return (
            f"TraceEvent(pc={self.pc}, op={self.op.value}, "
            f"taken={self.taken}, next={self.next_pc})"
        )


class StaticTable:
    """Interned per-static-instruction facts, referenced by small ids.

    Two static instructions are the same entry when opcode, destination
    and source registers agree — latency, occupancy, unit class and the
    static flag bits all derive from the opcode. The table is tiny (one
    entry per distinct instruction *form*, not per program location),
    so its columns are plain Python lists.
    """

    __slots__ = (
        "ops", "flags", "units", "latencies", "occupancies",
        "dsts", "srcs", "_index",
    )

    def __init__(self) -> None:
        self.ops: list[int] = []
        self.flags: list[int] = []
        self.units: list[int] = []
        self.latencies: list[int] = []
        self.occupancies: list[int] = []
        self.dsts: list[int] = []  # NO_VALUE encodes "no destination"
        self.srcs: list[tuple[int, ...]] = []
        self._index: dict[tuple[int, int, tuple[int, ...]], int] = {}

    def __len__(self) -> int:
        return len(self.ops)

    def intern(self, op_index: int, dst: int, srcs: tuple[int, ...]) -> int:
        """Id of the (op, dst, srcs) entry, creating it if new."""
        key = (op_index, dst, srcs)
        sid = self._index.get(key)
        if sid is None:
            sid = len(self.ops)
            op = OP_LIST[op_index]
            self.ops.append(op_index)
            self.flags.append(OP_STATIC_FLAGS[op_index])
            self.units.append(UNIT_INDEX[OP_UNIT[op]])
            self.latencies.append(OP_LATENCY.get(op, 1))
            self.occupancies.append(OP_OCCUPANCY.get(op, 1))
            self.dsts.append(dst)
            self.srcs.append(srcs)
            self._index[key] = sid
        return sid

    def intern_instruction(self, instruction: Instruction) -> int:
        """Intern a static :class:`Instruction`."""
        dst = instruction.destination_register()
        return self.intern(
            OP_INDEX[instruction.op],
            NO_VALUE if dst is None else dst,
            instruction.source_registers(),
        )


class Trace:
    """Columnar dynamic-instruction trace.

    Per-event columns (parallel, one entry per committed instruction):

    ========  ===========  ================================================
    column    array type   contents
    ========  ===========  ================================================
    pc        ``'q'``      static instruction index / synthetic pc
    sid       ``'i'``      id into the static table
    flags     ``'B'``      static flag bits | ``F_TAKEN`` when taken
    next_pc   ``'q'``      actual successor pc
    address   ``'q'``      word address, ``NO_VALUE`` for none
    ========  ===========  ================================================

    Indexing with an int materialises a :class:`TraceEvent`; slicing
    returns a zero-copy read-only view. Iteration yields events, so all
    object-based consumers keep working unchanged.
    """

    __slots__ = (
        "static", "pc", "sid", "flags", "next_pc", "address",
        "_start", "_stop",
    )

    def __init__(self) -> None:
        self.static = StaticTable()
        self.pc = array("q")
        self.sid = array("i")
        self.flags = array("B")
        self.next_pc = array("q")
        self.address = array("q")
        self._start = 0
        self._stop: int | None = None  # None: live root, len is dynamic

    # -- sizing ------------------------------------------------------------

    def __len__(self) -> int:
        stop = len(self.pc) if self._stop is None else self._stop
        return stop - self._start

    @property
    def is_view(self) -> bool:
        return self._stop is not None

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the event columns."""
        span = len(self)
        return span * (
            self.pc.itemsize + self.sid.itemsize + self.flags.itemsize
            + self.next_pc.itemsize + self.address.itemsize
        )

    def _bounds(self) -> tuple[int, int]:
        """(start, stop) of this trace within the shared columns."""
        stop = len(self.pc) if self._stop is None else self._stop
        return self._start, stop

    # -- building ----------------------------------------------------------

    def _require_root(self) -> None:
        if self._stop is not None:
            raise SimulationError("trace views are read-only")

    def append(
        self,
        pc: int,
        instruction: Instruction,
        taken: bool,
        next_pc: int,
        address: int | None,
    ) -> None:
        """Append one dynamic instruction (interns its static form)."""
        self._require_root()
        sid = self.static.intern_instruction(instruction)
        self.pc.append(pc)
        self.sid.append(sid)
        flags = self.static.flags[sid]
        self.flags.append(flags | F_TAKEN if taken else flags)
        self.next_pc.append(next_pc)
        self.address.append(NO_VALUE if address is None else address)

    def append_event(self, event: TraceEvent) -> None:
        """Append an existing object-form event."""
        self._require_root()
        dst = event.dst
        sid = self.static.intern(
            OP_INDEX[event.op],
            NO_VALUE if dst is None else dst,
            event.srcs,
        )
        self.pc.append(event.pc)
        self.sid.append(sid)
        flags = self.static.flags[sid]
        self.flags.append(flags | F_TAKEN if event.taken else flags)
        self.next_pc.append(event.next_pc)
        self.address.append(
            NO_VALUE if event.address is None else event.address
        )

    def extend(self, other: "Trace | list[TraceEvent]") -> None:
        """Append every event of ``other`` (remapping its static ids)."""
        self._require_root()
        if not isinstance(other, Trace):
            for event in other:
                self.append_event(event)
            return
        start, stop = other._bounds()
        if start == stop:
            return
        table = other.static
        sid_map = [
            self.static.intern(table.ops[s], table.dsts[s], table.srcs[s])
            for s in range(len(table))
        ]
        self.pc.extend(other.pc[start:stop])
        self.flags.extend(other.flags[start:stop])
        self.next_pc.extend(other.next_pc[start:stop])
        self.address.extend(other.address[start:stop])
        if sid_map == list(range(len(sid_map))):
            self.sid.extend(other.sid[start:stop])
        else:
            self.sid.extend(
                map(sid_map.__getitem__, other.sid[start:stop])
            )

    def __add__(self, other: "Trace") -> "Trace":
        if not isinstance(other, Trace):
            return NotImplemented
        merged = Trace()
        merged.extend(self)
        merged.extend(other)
        return merged

    @classmethod
    def from_events(cls, events) -> "Trace":
        """Columnar trace from any iterable of :class:`TraceEvent`."""
        trace = cls()
        append = trace.append_event
        for event in events:
            append(event)
        return trace

    def to_events(self) -> list[TraceEvent]:
        """Materialise the whole trace as a list of events."""
        return [self._materialize(i) for i in range(*self._bounds())]

    # -- access ------------------------------------------------------------

    def _materialize(self, index: int) -> TraceEvent:
        """Build the object form of the event at absolute ``index``."""
        static = self.static
        sid = self.sid[index]
        event = TraceEvent.__new__(TraceEvent)
        event.pc = self.pc[index]
        event.op = OP_LIST[static.ops[sid]]
        event.unit = UNIT_LIST[static.units[sid]]
        event.latency = static.latencies[sid]
        event.occupancy = static.occupancies[sid]
        dst = static.dsts[sid]
        event.dst = None if dst < 0 else dst
        event.srcs = static.srcs[sid]
        flags = self.flags[index]
        event.is_branch = bool(flags & F_BRANCH)
        event.is_conditional = bool(flags & F_COND)
        event.taken = bool(flags & F_TAKEN)
        event.is_load = bool(flags & F_LOAD)
        event.is_store = bool(flags & F_STORE)
        event.next_pc = self.next_pc[index]
        address = self.address[index]
        event.address = None if address < 0 else address
        return event

    def __getitem__(self, key):
        start, stop = self._bounds()
        if isinstance(key, slice):
            if key.step not in (None, 1):
                raise SimulationError("trace slices must be contiguous")
            span = stop - start
            lo, hi, _ = key.indices(span)
            view = Trace.__new__(Trace)
            view.static = self.static
            view.pc = self.pc
            view.sid = self.sid
            view.flags = self.flags
            view.next_pc = self.next_pc
            view.address = self.address
            view._start = start + lo
            view._stop = start + max(lo, hi)
            return view
        index = key
        span = stop - start
        if index < 0:
            index += span
        if not 0 <= index < span:
            raise IndexError("trace index out of range")
        return self._materialize(start + index)

    def __iter__(self):
        materialize = self._materialize
        start, stop = self._bounds()
        for index in range(start, stop):
            yield materialize(index)

    def __repr__(self) -> str:
        kind = "view" if self.is_view else "trace"
        return (
            f"Trace({len(self)} events, {len(self.static)} static, "
            f"{kind})"
        )

    # -- segmentation ------------------------------------------------------

    def segments(self, max_events: int):
        """Yield zero-copy views of at most ``max_events`` events each.

        Segments tile the trace in order with no gaps or overlap; the
        final segment may be short. Each yielded segment is an ordinary
        read-only :class:`Trace` view sharing this trace's columns and
        static table, so segmenting costs O(1) per segment regardless
        of trace length. Streaming consumers
        (:meth:`~repro.uarch.core.Core.simulate_stream`,
        :func:`trace_statistics`, :func:`opcode_histogram`) accept the
        resulting iterator directly.
        """
        if max_events < 1:
            raise SimulationError("segment size must be >= 1")
        span = len(self)
        for lo in range(0, span, max_events):
            yield self[lo : lo + max_events]

    # -- analysis ----------------------------------------------------------

    def stats(self) -> "TraceStats":
        """Aggregate statistics (single pass over the columns)."""
        return trace_statistics(self)


#: A trace segment is an ordinary read-only :class:`Trace` view (or a
#: bounded root trace yielded by a streaming generator). The alias
#: exists so streaming signatures — ``segments: Iterable[TraceSegment]``
#: — say what they mean; there is deliberately no separate class, which
#: is what keeps segmentation zero-copy.
TraceSegment = Trace


@dataclass
class TraceStats:
    """Aggregate statistics of a trace (instruction mix, branches)."""

    instructions: int = 0
    branches: int = 0
    conditional_branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    fxu_ops: int = 0
    max_ops: int = 0
    isel_ops: int = 0
    cmp_ops: int = 0

    @property
    def branch_fraction(self) -> float:
        """Branches as a fraction of all instructions."""
        if self.instructions == 0:
            return 0.0
        return self.branches / self.instructions

    @property
    def taken_fraction(self) -> float:
        """Taken branches as a fraction of branches."""
        if self.branches == 0:
            return 0.0
        return self.taken_branches / self.branches

    @property
    def load_store_fraction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return (self.loads + self.stores) / self.instructions


def _columnar_statistics(
    trace: Trace, stats: TraceStats | None = None
) -> TraceStats:
    """One pass over the flags and sid columns, counting in C.

    When ``stats`` is given, counts accumulate into it (the streaming
    path folds one segment at a time into a shared accumulator).
    """
    start, stop = trace._bounds()
    if stats is None:
        stats = TraceStats()
    stats.instructions += stop - start
    flag_counts = Counter(memoryview(trace.flags)[start:stop])
    for flags, count in flag_counts.items():
        if flags & F_BRANCH:
            stats.branches += count
            if flags & F_COND:
                stats.conditional_branches += count
            if flags & F_TAKEN:
                stats.taken_branches += count
        if flags & F_LOAD:
            stats.loads += count
        elif flags & F_STORE:
            stats.stores += count
    static = trace.static
    fxu_index = UNIT_INDEX[Unit.FXU]
    for sid, count in Counter(memoryview(trace.sid)[start:stop]).items():
        if static.units[sid] == fxu_index:
            stats.fxu_ops += count
        op = OP_LIST[static.ops[sid]]
        if op is Op.MAX:
            stats.max_ops += count
        elif op is Op.ISEL:
            stats.isel_ops += count
        elif op in (Op.CMP, Op.CMPI):
            stats.cmp_ops += count
    return stats


def _event_statistics(event: TraceEvent, stats: TraceStats) -> None:
    """Fold one object-form event into ``stats``."""
    stats.instructions += 1
    if event.is_branch:
        stats.branches += 1
        if event.is_conditional:
            stats.conditional_branches += 1
        if event.taken:
            stats.taken_branches += 1
    if event.is_load:
        stats.loads += 1
    if event.is_store:
        stats.stores += 1
    if event.unit is Unit.FXU:
        stats.fxu_ops += 1
    if event.op is Op.MAX:
        stats.max_ops += 1
    elif event.op is Op.ISEL:
        stats.isel_ops += 1
    elif event.op in (Op.CMP, Op.CMPI):
        stats.cmp_ops += 1


def trace_statistics(events) -> TraceStats:
    """Compute :class:`TraceStats` over ``events``.

    Accepts a columnar :class:`Trace`, a list of :class:`TraceEvent`,
    or an **iterator of segments** (each a :class:`Trace` view or an
    event list) as produced by :meth:`Trace.segments` or the streaming
    interpreter/generator paths. Segment iterators are consumed in a
    single pass with O(segment) live memory.
    """
    if isinstance(events, Trace):
        return _columnar_statistics(events)
    stats = TraceStats()
    for item in events:
        if isinstance(item, Trace):
            _columnar_statistics(item, stats)
        elif isinstance(item, TraceEvent):
            _event_statistics(item, stats)
        else:
            for event in item:
                _event_statistics(event, stats)
    return stats


def _columnar_histogram(trace: Trace, histogram: Counter) -> None:
    start, stop = trace._bounds()
    ops = trace.static.ops
    for sid, count in Counter(
        memoryview(trace.sid)[start:stop]
    ).items():
        histogram[OP_LIST[ops[sid]]] += count


def opcode_histogram(events) -> Counter:
    """Dynamic opcode counts (useful for §VI path-length arguments).

    Like :func:`trace_statistics`, accepts a :class:`Trace`, an event
    list, or a single-pass iterator of segments.
    """
    histogram: Counter = Counter()
    if isinstance(events, Trace):
        _columnar_histogram(events, histogram)
        return histogram
    for item in events:
        if isinstance(item, Trace):
            _columnar_histogram(item, histogram)
        elif isinstance(item, TraceEvent):
            histogram[item.op] += 1
        else:
            for event in item:
                histogram[event.op] += 1
    return histogram
