"""The mini-ISA instruction set.

A deliberately small PowerPC-flavoured integer ISA: enough to express
the dynamic-programming kernels, plus the paper's two proposed
predicated instructions:

``max``
    ``max rd, ra, rb`` — write the larger of two source registers to the
    target in one cycle (the hypothetical instruction of §IV-A).
``isel``
    ``isel rd, ra, rb, crf, bit`` — select ``ra`` when the given CR bit
    is set, else ``rb`` (the POWER embedded-core instruction the paper
    borrows). It needs a preceding ``cmp`` to set the CR field.

Each opcode carries its execution-unit class so the core model can
schedule it: ``FXU`` (fixed point), ``LSU`` (load/store), ``BRU``
(branch).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AssemblyError


class Unit(enum.Enum):
    """Execution-unit class of an instruction."""

    FXU = "fxu"
    LSU = "lsu"
    BRU = "bru"
    NONE = "none"  # nop/halt


class Op(enum.Enum):
    """Opcodes of the mini-ISA."""

    LI = "li"        # li rd, imm
    MR = "mr"        # mr rd, ra
    ADD = "add"      # add rd, ra, rb
    ADDI = "addi"    # addi rd, ra, imm
    SUB = "sub"      # sub rd, ra, rb
    SUBI = "subi"    # subi rd, ra, imm
    MUL = "mul"      # mul rd, ra, rb
    MULI = "muli"    # muli rd, ra, imm
    NEG = "neg"      # neg rd, ra
    AND = "and"      # and rd, ra, rb
    OR = "or"        # or rd, ra, rb
    MAX = "max"      # max rd, ra, rb          (proposed)
    ISEL = "isel"    # isel rd, ra, rb, crf, bit (POWER embedded)
    CMP = "cmp"      # cmp crf, ra, rb
    CMPI = "cmpi"    # cmpi crf, ra, imm
    LD = "ld"        # ld rd, ra, imm          (load from R[ra]+imm)
    LDX = "ldx"      # ldx rd, ra, rb          (load from R[ra]+R[rb])
    ST = "st"        # st rs, ra, imm          (store to R[ra]+imm)
    STX = "stx"      # stx rs, ra, rb
    B = "b"          # b label
    BC = "bc"        # bc crf, bit, taken?, label (branch if bit == want)
    NOP = "nop"
    HALT = "halt"


#: Execution unit per opcode.
OP_UNIT = {
    Op.LI: Unit.FXU, Op.MR: Unit.FXU, Op.ADD: Unit.FXU, Op.ADDI: Unit.FXU,
    Op.SUB: Unit.FXU, Op.SUBI: Unit.FXU, Op.MUL: Unit.FXU, Op.MULI: Unit.FXU,
    Op.NEG: Unit.FXU, Op.AND: Unit.FXU, Op.OR: Unit.FXU,
    Op.MAX: Unit.FXU, Op.ISEL: Unit.FXU,
    Op.CMP: Unit.FXU, Op.CMPI: Unit.FXU,
    Op.LD: Unit.LSU, Op.LDX: Unit.LSU, Op.ST: Unit.LSU, Op.STX: Unit.LSU,
    Op.B: Unit.BRU, Op.BC: Unit.BRU,
    Op.NOP: Unit.NONE, Op.HALT: Unit.NONE,
}

#: Execution latency in cycles (L1-hit latency for loads; POWER5-like).
OP_LATENCY = {
    Op.MUL: 5, Op.MULI: 5,
    Op.LD: 2, Op.LDX: 2,
}

#: Cycles an instruction occupies its unit's issue pipe. POWER5's
#: fixed-point multiply is not fully pipelined, so it blocks an FXU for
#: its full latency — a major source of the FXU pressure the paper's
#: §VI-C experiment relieves (DP kernels multiply for row addressing).
OP_OCCUPANCY = {
    Op.MUL: 5, Op.MULI: 5,
}

BRANCH_OPS = frozenset({Op.B, Op.BC})
LOAD_OPS = frozenset({Op.LD, Op.LDX})
STORE_OPS = frozenset({Op.ST, Op.STX})

#: Dense integer encoding of the opcode space, used by the columnar
#: trace representation and the binary tracestore: ``OP_LIST[i]`` is the
#: opcode with index ``i`` and ``OP_INDEX`` is its inverse. The order is
#: the :class:`Op` declaration order, which is part of the v2 trace
#: format — append new opcodes, never reorder.
OP_LIST: tuple[Op, ...] = tuple(Op)
OP_INDEX: dict[Op, int] = {op: index for index, op in enumerate(OP_LIST)}

#: Unit classes under the same dense encoding (declaration order).
UNIT_LIST: tuple[Unit, ...] = tuple(Unit)
UNIT_INDEX: dict[Unit, int] = {
    unit: index for index, unit in enumerate(UNIT_LIST)
}


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Register operands are GPR indices; ``crf``/``crbit`` identify a
    condition-register bit for ``cmp``/``isel``/``bc``; ``imm`` holds an
    immediate; ``label`` is a symbolic branch target resolved by the
    program container into ``target`` (an instruction index).
    """

    op: Op
    rd: int | None = None
    ra: int | None = None
    rb: int | None = None
    imm: int | None = None
    crf: int | None = None
    crbit: int | None = None
    want: bool = True  # for BC: branch when bit == want
    label: str | None = None
    comment: str = ""

    @property
    def unit(self) -> Unit:
        return OP_UNIT[self.op]

    @property
    def latency(self) -> int:
        return OP_LATENCY.get(self.op, 1)

    @property
    def occupancy(self) -> int:
        """Cycles this instruction blocks its execution unit."""
        return OP_OCCUPANCY.get(self.op, 1)

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_conditional_branch(self) -> bool:
        return self.op is Op.BC

    @property
    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.op in STORE_OPS

    def source_registers(self) -> tuple[int, ...]:
        """GPRs read by this instruction (for dependence tracking)."""
        op = self.op
        if op in (Op.MR, Op.NEG, Op.ADDI, Op.SUBI, Op.MULI, Op.CMPI, Op.LD):
            return (self.ra,)  # type: ignore[return-value]
        if op in (
            Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.MAX, Op.CMP,
            Op.LDX, Op.ISEL,
        ):
            return tuple(
                r for r in (self.ra, self.rb) if r is not None
            )
        if op is Op.ST:
            return tuple(r for r in (self.rd, self.ra) if r is not None)
        if op is Op.STX:
            return tuple(
                r for r in (self.rd, self.ra, self.rb) if r is not None
            )
        return ()

    def destination_register(self) -> int | None:
        """GPR written by this instruction, if any."""
        if self.op in STORE_OPS or self.op in BRANCH_OPS:
            return None
        if self.op in (Op.NOP, Op.HALT, Op.CMP, Op.CMPI):
            return None
        return self.rd

    def render(self) -> str:
        """Assembly-like text rendering."""
        op = self.op
        if op is Op.LI:
            body = f"li r{self.rd}, {self.imm}"
        elif op is Op.MR:
            body = f"mr r{self.rd}, r{self.ra}"
        elif op is Op.NEG:
            body = f"neg r{self.rd}, r{self.ra}"
        elif op in (Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.MAX):
            body = f"{op.value} r{self.rd}, r{self.ra}, r{self.rb}"
        elif op in (Op.ADDI, Op.SUBI, Op.MULI):
            body = f"{op.value} r{self.rd}, r{self.ra}, {self.imm}"
        elif op is Op.ISEL:
            body = (
                f"isel r{self.rd}, r{self.ra}, r{self.rb}, "
                f"cr{self.crf}, {self.crbit}"
            )
        elif op is Op.CMP:
            body = f"cmp cr{self.crf}, r{self.ra}, r{self.rb}"
        elif op is Op.CMPI:
            body = f"cmpi cr{self.crf}, r{self.ra}, {self.imm}"
        elif op is Op.LD:
            body = f"ld r{self.rd}, {self.imm}(r{self.ra})"
        elif op is Op.LDX:
            body = f"ldx r{self.rd}, r{self.ra}, r{self.rb}"
        elif op is Op.ST:
            body = f"st r{self.rd}, {self.imm}(r{self.ra})"
        elif op is Op.STX:
            body = f"stx r{self.rd}, r{self.ra}, r{self.rb}"
        elif op is Op.B:
            body = f"b {self.label}"
        elif op is Op.BC:
            kind = "bt" if self.want else "bf"
            body = f"{kind} cr{self.crf}[{self.crbit}], {self.label}"
        else:
            body = op.value
        if self.comment:
            return f"{body:<40}# {self.comment}"
        return body

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def validate(instruction: Instruction) -> None:
    """Raise :class:`AssemblyError` if operands are malformed."""
    op = instruction.op
    need_rd = op not in (
        Op.CMP, Op.CMPI, Op.B, Op.BC, Op.NOP, Op.HALT,
    )
    if need_rd and instruction.rd is None:
        raise AssemblyError(f"{op.value} needs a target register")
    if op in (Op.BC,) and (
        instruction.crf is None or instruction.crbit is None
    ):
        raise AssemblyError("bc needs a CR field and bit")
    if instruction.is_branch and instruction.label is None:
        raise AssemblyError(f"{op.value} needs a label")
    if op is Op.ISEL and (
        instruction.crf is None or instruction.crbit is None
    ):
        raise AssemblyError("isel needs a CR field and bit")
