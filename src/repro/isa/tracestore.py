"""Trace serialisation.

Dynamic traces are expensive to regenerate (interpreting a kernel run)
but cheap to re-simulate under many core configurations, so persisting
them pays off for design-space sweeps. Two formats coexist:

**v1 (text)** — a header line, then one record per event::

    pc op taken next_pc address dst src1,src2,...

with ``-`` for absent fields. Verbose but greppable; kept for
compatibility and for ``repro trace`` output.

**v2 (binary, columnar)** — mirrors :class:`~repro.isa.trace.Trace`
on disk: a versioned magic and event/static counts, then one
zlib-deflated payload holding the interned static table (opcode,
destination, sources — unit/latency/occupancy/flags are re-derived from
the opcode on load, exactly as the v1 loader does) followed by the five
event columns as contiguous little-endian arrays. Column data is
extremely regular (mostly-sequential pcs, tiny sid alphabet), so the
deflated form is typically 5-10x smaller than v1 text, and loading is
one ``decompress`` plus five ``array.frombytes`` — no per-event Python
parsing.

**v3 (binary, segmented)** — the streaming generation of v2: the same
columnar encoding, but the event columns are cut into bounded-size
**segments**, each deflated into its own frame, followed by one
deflated static-table blob, an index (per-segment file offset, event
count, compressed length and CRC-32) and a fixed-size footer carrying
the totals plus a SHA-256 content digest folded over every per-segment
CRC. Readers can therefore either materialise the whole trace
(:func:`load_trace`) or iterate segments lazily with O(segment) live
memory (:class:`SegmentedTraceReader` / :func:`open_trace_segments`)
— seek to a frame, inflate it, simulate it, drop it.

:func:`load_trace` sniffs the magic and accepts any format; the
engine's persistent cache writes v3 only (see
:data:`TRACE_FORMAT_VERSION`, which is folded into the cache digest)
and rewrites v1/v2 entries on read.
Every structural problem — wrong magic, truncation, trailing garbage,
out-of-range ids, CRC or digest mismatch — raises
:class:`~repro.errors.InterpreterError`, so callers (the engine cache)
can evict instead of crashing.
"""

from __future__ import annotations

import hashlib
import struct
import sys
import zlib
from array import array
from pathlib import Path

from repro.errors import InterpreterError
from repro.isa.instructions import (
    OP_LATENCY,
    OP_LIST,
    OP_OCCUPANCY,
    OP_UNIT,
    Op,
)
from repro.isa.trace import Trace, TraceEvent

_MAGIC = "repro-trace v1"
_MAGIC_V2 = b"repro-trace v2\x00"
_HEADER_V2 = struct.Struct("<QI")

_MAGIC_V3 = b"repro-trace v3\x00"
#: Per-segment index record: file offset, events, deflated length,
#: CRC-32 of the deflated frame.
_INDEX_V3 = struct.Struct("<QQII")
#: Footer: total events, index offset, static-blob offset, static-blob
#: deflated length, static count, segment count, SHA-256 content
#: digest (folded over every per-segment CRC + the static blob CRC),
#: end marker.
_FOOTER_V3 = struct.Struct("<QQQIII32s8s")
_END_V3 = b"repro3\x00\x00"

#: Default number of events per v3 segment frame (~1.8 MiB of raw
#: column data). The engine's streaming layer overrides it via
#: ``REPRO_SEGMENT_EVENTS``.
DEFAULT_SEGMENT_EVENTS = 65536

#: On-disk trace format the engine cache writes. Part of the cache
#: digest: bumping it invalidates every persisted trace wholesale.
TRACE_FORMAT_VERSION = 3

_BRANCH_OPS = {Op.B, Op.BC}
_LOAD_OPS = {Op.LD, Op.LDX}
_STORE_OPS = {Op.ST, Op.STX}


def _restore_event(
    pc: int, op: Op, taken: bool, next_pc: int,
    address: int | None, dst: int | None, srcs: tuple[int, ...],
) -> TraceEvent:
    """Rebuild a TraceEvent without an Instruction object."""
    event = TraceEvent.__new__(TraceEvent)
    event.pc = pc
    event.op = op
    event.unit = OP_UNIT[op]
    event.latency = OP_LATENCY.get(op, 1)
    event.occupancy = OP_OCCUPANCY.get(op, 1)
    event.dst = dst
    event.srcs = srcs
    event.is_branch = op in _BRANCH_OPS
    event.is_conditional = op is Op.BC
    event.taken = taken
    event.next_pc = next_pc
    event.is_load = op in _LOAD_OPS
    event.is_store = op in _STORE_OPS
    event.address = address
    return event


def save_trace(path: str | Path, events) -> None:
    """Write ``events`` (either trace form) to ``path`` as v1 text."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{_MAGIC} {len(events)}\n")
        for event in events:
            address = "-" if event.address is None else str(event.address)
            dst = "-" if event.dst is None else str(event.dst)
            srcs = ",".join(map(str, event.srcs)) if event.srcs else "-"
            handle.write(
                f"{event.pc} {event.op.value} {int(event.taken)} "
                f"{event.next_pc} {address} {dst} {srcs}\n"
            )


def _load_trace_v1(path: str | Path) -> list[TraceEvent]:
    """Read a v1 text trace into object form."""
    with open(path, encoding="ascii") as handle:
        header = handle.readline().rstrip("\n")
        parts = header.rsplit(" ", 1)
        if len(parts) != 2 or parts[0] != _MAGIC:
            raise InterpreterError(f"{path}: not a repro trace file")
        try:
            expected = int(parts[1])
        except ValueError:
            raise InterpreterError(f"{path}: bad trace header") from None
        events: list[TraceEvent] = []
        for line_no, line in enumerate(handle, start=2):
            fields = line.split()
            if len(fields) != 7:
                raise InterpreterError(
                    f"{path}:{line_no}: malformed record"
                )
            pc_s, op_s, taken_s, next_s, address_s, dst_s, srcs_s = fields
            try:
                op = Op(op_s)
            except ValueError:
                raise InterpreterError(
                    f"{path}:{line_no}: unknown opcode {op_s!r}"
                ) from None
            events.append(
                _restore_event(
                    pc=int(pc_s),
                    op=op,
                    taken=taken_s == "1",
                    next_pc=int(next_s),
                    address=None if address_s == "-" else int(address_s),
                    dst=None if dst_s == "-" else int(dst_s),
                    srcs=(
                        ()
                        if srcs_s == "-"
                        else tuple(int(s) for s in srcs_s.split(","))
                    ),
                )
            )
    if len(events) != expected:
        raise InterpreterError(
            f"{path}: header promised {expected} events, found "
            f"{len(events)}"
        )
    return events


# -- v2 binary ---------------------------------------------------------------


def _column_bytes(column: array, start: int, stop: int) -> bytes:
    """Little-endian bytes of ``column[start:stop]``."""
    chunk = column[start:stop]
    if sys.byteorder == "big":
        chunk.byteswap()
    return chunk.tobytes()


def _static_payload(static) -> bytearray:
    """Serialised static-table records (shared by v2 and v3)."""
    payload = bytearray()
    for sid in range(len(static)):
        srcs = static.srcs[sid]
        payload.append(static.ops[sid])
        payload.append(static.dsts[sid] & 0xFF)
        payload.append(len(srcs))
        payload.extend(srcs)
    return payload


def save_trace_v2(path: str | Path, trace) -> None:
    """Write ``trace`` (either form) to ``path`` as v2 binary."""
    if not isinstance(trace, Trace):
        trace = Trace.from_events(trace)
    start, stop = trace._bounds()
    static = trace.static
    payload = _static_payload(static)
    payload += _column_bytes(trace.pc, start, stop)
    payload += _column_bytes(trace.sid, start, stop)
    payload += _column_bytes(trace.flags, start, stop)
    payload += _column_bytes(trace.next_pc, start, stop)
    payload += _column_bytes(trace.address, start, stop)
    with open(path, "wb") as handle:
        handle.write(_MAGIC_V2)
        handle.write(_HEADER_V2.pack(stop - start, len(static)))
        handle.write(zlib.compress(bytes(payload), 6))


def _read_column(
    data: bytes, offset: int, typecode: str, count: int, path,
    label: str = "v2",
) -> tuple[array, int]:
    column = array(typecode)
    size = column.itemsize * count
    if offset + size > len(data):
        raise InterpreterError(f"{path}: truncated {label} trace")
    column.frombytes(data[offset : offset + size])
    if sys.byteorder == "big":
        column.byteswap()
    return column, offset + size


def _parse_statics(
    data: bytes, offset: int, statics: int, path, static,
    label: str = "v2",
) -> int:
    """Intern ``statics`` serialised records into ``static``."""
    for _ in range(statics):
        if offset + 3 > len(data):
            raise InterpreterError(
                f"{path}: truncated {label} static table"
            )
        op_index = data[offset]
        dst = data[offset + 1]
        n_srcs = data[offset + 2]
        offset += 3
        if op_index >= len(OP_LIST) or n_srcs > 8:
            raise InterpreterError(
                f"{path}: corrupt {label} static record"
            )
        if offset + n_srcs > len(data):
            raise InterpreterError(
                f"{path}: truncated {label} static table"
            )
        srcs = tuple(data[offset : offset + n_srcs])
        offset += n_srcs
        if dst >= 0x80:
            dst -= 0x100
        sid = static.intern(op_index, dst, srcs)
        if sid != len(static) - 1:
            raise InterpreterError(
                f"{path}: duplicate {label} static record"
            )
    return offset


def _inflate(blob: bytes, path, what: str) -> bytes:
    """Strict one-stream zlib inflate (no tail, no trailing bytes)."""
    decompressor = zlib.decompressobj()
    try:
        payload = decompressor.decompress(blob)
        payload += decompressor.flush()
    except zlib.error as error:
        raise InterpreterError(
            f"{path}: corrupt {what} ({error})"
        ) from None
    if not decompressor.eof:
        raise InterpreterError(f"{path}: truncated {what}")
    if decompressor.unused_data:
        raise InterpreterError(f"{path}: trailing bytes in {what}")
    return payload


def _load_trace_v2(path: str | Path, data: bytes) -> Trace:
    """Decode a v2 binary trace (``data`` is the whole file)."""
    offset = len(_MAGIC_V2)
    if len(data) < offset + _HEADER_V2.size:
        raise InterpreterError(f"{path}: truncated v2 trace header")
    events, statics = _HEADER_V2.unpack_from(data, offset)
    offset += _HEADER_V2.size
    decompressor = zlib.decompressobj()
    try:
        payload = decompressor.decompress(data[offset:])
        payload += decompressor.flush()
    except zlib.error as error:
        raise InterpreterError(
            f"{path}: corrupt v2 trace payload ({error})"
        ) from None
    if not decompressor.eof:
        raise InterpreterError(f"{path}: truncated v2 trace payload")
    if decompressor.unused_data:
        raise InterpreterError(f"{path}: trailing bytes in v2 trace")
    data = payload
    offset = 0

    trace = Trace()
    static = trace.static
    offset = _parse_statics(data, offset, statics, path, static)

    trace.pc, offset = _read_column(data, offset, "q", events, path)
    trace.sid, offset = _read_column(data, offset, "i", events, path)
    trace.flags, offset = _read_column(data, offset, "B", events, path)
    trace.next_pc, offset = _read_column(data, offset, "q", events, path)
    trace.address, offset = _read_column(data, offset, "q", events, path)
    if offset != len(data):
        raise InterpreterError(f"{path}: trailing bytes in v2 trace")
    if events and statics == 0:
        raise InterpreterError(f"{path}: v2 trace has no static table")
    if events and max(trace.sid) >= statics:
        raise InterpreterError(f"{path}: v2 static id out of range")
    return trace


# -- v3 segmented binary -----------------------------------------------------


def _read_event_columns(
    payload: bytes, events: int, path, label: str
) -> tuple[array, array, array, array, array]:
    """The five event columns of one deflated payload, strictly."""
    offset = 0
    pc, offset = _read_column(payload, offset, "q", events, path, label)
    sid, offset = _read_column(payload, offset, "i", events, path, label)
    flags, offset = _read_column(payload, offset, "B", events, path, label)
    next_pc, offset = _read_column(
        payload, offset, "q", events, path, label
    )
    address, offset = _read_column(
        payload, offset, "q", events, path, label
    )
    if offset != len(payload):
        raise InterpreterError(
            f"{path}: trailing bytes in {label} segment"
        )
    return pc, sid, flags, next_pc, address


def save_trace_v3(
    path: str | Path, trace, segment_events: int | None = None
) -> None:
    """Write a trace to ``path`` as v3 segmented binary.

    ``trace`` may be a columnar :class:`Trace` (or event list), which
    is cut into ``segment_events``-sized frames, or an **iterator of
    segments** — in that case frames are written as segments arrive,
    with O(segment) live memory, and per-segment static tables are
    re-interned into one shared on-disk table (ids remapped per
    frame). Empty segments are skipped.
    """
    if segment_events is None:
        segment_events = DEFAULT_SEGMENT_EVENTS
    if isinstance(trace, list):
        trace = Trace.from_events(trace)
    if isinstance(trace, Trace):
        shared_static = trace.static
        segments = trace.segments(segment_events) if len(trace) else ()
    else:
        shared_static = None
        segments = trace

    from repro.isa.trace import StaticTable

    static = shared_static if shared_static is not None else StaticTable()
    digest = hashlib.sha256()
    index: list[tuple[int, int, int, int]] = []
    total_events = 0
    last_table = shared_static
    last_map: list[int] | None = None
    with open(path, "wb") as handle:
        handle.write(_MAGIC_V3)
        offset = len(_MAGIC_V3)
        for segment in segments:
            if not isinstance(segment, Trace):
                segment = Trace.from_events(segment)
            start, stop = segment._bounds()
            events = stop - start
            if events == 0:
                continue
            table = segment.static
            if table is static:
                sid_bytes = _column_bytes(segment.sid, start, stop)
            else:
                if table is not last_table or last_map is None or (
                    len(last_map) != len(table)
                ):
                    last_map = [
                        static.intern(
                            table.ops[s], table.dsts[s], table.srcs[s]
                        )
                        for s in range(len(table))
                    ]
                    last_table = table
                if last_map == list(range(len(last_map))):
                    sid_bytes = _column_bytes(segment.sid, start, stop)
                else:
                    remapped = array(
                        "i",
                        map(
                            last_map.__getitem__,
                            segment.sid[start:stop],
                        ),
                    )
                    sid_bytes = _column_bytes(remapped, 0, events)
            payload = b"".join(
                (
                    _column_bytes(segment.pc, start, stop),
                    sid_bytes,
                    _column_bytes(segment.flags, start, stop),
                    _column_bytes(segment.next_pc, start, stop),
                    _column_bytes(segment.address, start, stop),
                )
            )
            frame = zlib.compress(payload, 6)
            crc = zlib.crc32(frame)
            handle.write(frame)
            index.append((offset, events, len(frame), crc))
            digest.update(struct.pack("<I", crc))
            offset += len(frame)
            total_events += events
        static_blob = zlib.compress(bytes(_static_payload(static)), 6)
        digest.update(struct.pack("<I", zlib.crc32(static_blob)))
        static_offset = offset
        handle.write(static_blob)
        offset += len(static_blob)
        index_offset = offset
        for entry in index:
            handle.write(_INDEX_V3.pack(*entry))
        handle.write(
            _FOOTER_V3.pack(
                total_events,
                index_offset,
                static_offset,
                len(static_blob),
                len(static),
                len(index),
                digest.digest(),
                _END_V3,
            )
        )


def _parse_v3_layout(data_len: int, footer: bytes, path):
    """Validate a v3 footer; returns its unpacked fields."""
    (
        total_events,
        index_offset,
        static_offset,
        static_len,
        statics,
        n_segments,
        digest_bytes,
        end,
    ) = _FOOTER_V3.unpack(footer)
    if end != _END_V3:
        raise InterpreterError(f"{path}: corrupt v3 footer")
    index_end = data_len - _FOOTER_V3.size
    if (
        index_offset + n_segments * _INDEX_V3.size != index_end
        or static_offset + static_len != index_offset
        or static_offset < len(_MAGIC_V3)
    ):
        raise InterpreterError(f"{path}: corrupt v3 layout")
    return (
        total_events, index_offset, static_offset, static_len,
        statics, n_segments, digest_bytes,
    )


def _load_trace_v3(path: str | Path, data: bytes) -> Trace:
    """Decode a whole v3 trace eagerly (``data`` is the file)."""
    if len(data) < len(_MAGIC_V3) + _FOOTER_V3.size:
        raise InterpreterError(f"{path}: truncated v3 trace")
    (
        total_events, index_offset, static_offset, static_len,
        statics, n_segments, digest_bytes,
    ) = _parse_v3_layout(
        len(data), data[len(data) - _FOOTER_V3.size :], path
    )
    digest = hashlib.sha256()
    trace = Trace()
    expected_offset = len(_MAGIC_V3)
    events_seen = 0
    for k in range(n_segments):
        offset, events, comp_len, crc = _INDEX_V3.unpack_from(
            data, index_offset + k * _INDEX_V3.size
        )
        if (
            offset != expected_offset
            or events == 0
            or offset + comp_len > static_offset
        ):
            raise InterpreterError(f"{path}: corrupt v3 index entry")
        frame = data[offset : offset + comp_len]
        if zlib.crc32(frame) != crc:
            raise InterpreterError(f"{path}: v3 segment CRC mismatch")
        digest.update(struct.pack("<I", crc))
        payload = _inflate(frame, path, "v3 segment")
        pc, sid, flags, next_pc, address = _read_event_columns(
            payload, events, path, "v3"
        )
        trace.pc.extend(pc)
        trace.sid.extend(sid)
        trace.flags.extend(flags)
        trace.next_pc.extend(next_pc)
        trace.address.extend(address)
        expected_offset = offset + comp_len
        events_seen += events
    if expected_offset != static_offset:
        raise InterpreterError(f"{path}: trailing bytes in v3 trace")
    if events_seen != total_events:
        raise InterpreterError(
            f"{path}: v3 footer promised {total_events} events, found "
            f"{events_seen}"
        )
    static_blob = data[static_offset : static_offset + static_len]
    digest.update(struct.pack("<I", zlib.crc32(static_blob)))
    if digest.digest() != digest_bytes:
        raise InterpreterError(f"{path}: v3 content digest mismatch")
    payload = _inflate(static_blob, path, "v3 static table")
    offset = _parse_statics(payload, 0, statics, path, trace.static, "v3")
    if offset != len(payload):
        raise InterpreterError(
            f"{path}: trailing bytes in v3 static table"
        )
    if total_events and statics == 0:
        raise InterpreterError(f"{path}: v3 trace has no static table")
    if total_events and max(trace.sid) >= statics:
        raise InterpreterError(f"{path}: v3 static id out of range")
    return trace


class SegmentedTraceReader:
    """Lazy v3 reader: per-segment loading with O(segment) memory.

    Parses the footer, index and static table once (the content digest
    is verified up front from the indexed per-segment CRCs alone, no
    frame reads needed), then inflates one frame at a time on demand.
    Each yielded segment is a read-only :class:`Trace` sharing the one
    decoded static table, so consumers like
    :meth:`~repro.uarch.core.Core.simulate_stream` reuse their packed
    meta rows across segments.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = open(path, "rb")
        try:
            self._parse()
        except BaseException:
            self._handle.close()
            raise

    def _parse(self) -> None:
        handle = self._handle
        head = handle.read(len(_MAGIC_V3))
        if head != _MAGIC_V3:
            raise InterpreterError(f"{self.path}: not a v3 trace file")
        handle.seek(0, 2)
        size = handle.tell()
        if size < len(_MAGIC_V3) + _FOOTER_V3.size:
            raise InterpreterError(f"{self.path}: truncated v3 trace")
        handle.seek(size - _FOOTER_V3.size)
        (
            self.events, index_offset, static_offset, static_len,
            self._statics, n_segments, digest_bytes,
        ) = _parse_v3_layout(
            size, handle.read(_FOOTER_V3.size), self.path
        )
        handle.seek(index_offset)
        index_blob = handle.read(n_segments * _INDEX_V3.size)
        self._index = [
            _INDEX_V3.unpack_from(index_blob, k * _INDEX_V3.size)
            for k in range(n_segments)
        ]
        digest = hashlib.sha256()
        expected_offset = len(_MAGIC_V3)
        events_seen = 0
        for offset, events, comp_len, crc in self._index:
            if (
                offset != expected_offset
                or events == 0
                or offset + comp_len > static_offset
            ):
                raise InterpreterError(
                    f"{self.path}: corrupt v3 index entry"
                )
            digest.update(struct.pack("<I", crc))
            expected_offset = offset + comp_len
            events_seen += events
        if expected_offset != static_offset:
            raise InterpreterError(
                f"{self.path}: trailing bytes in v3 trace"
            )
        if events_seen != self.events:
            raise InterpreterError(
                f"{self.path}: v3 footer promised {self.events} "
                f"events, found {events_seen}"
            )
        handle.seek(static_offset)
        static_blob = handle.read(static_len)
        digest.update(struct.pack("<I", zlib.crc32(static_blob)))
        if digest.digest() != digest_bytes:
            raise InterpreterError(
                f"{self.path}: v3 content digest mismatch"
            )
        from repro.isa.trace import StaticTable

        self.static = StaticTable()
        payload = _inflate(static_blob, self.path, "v3 static table")
        offset = _parse_statics(
            payload, 0, self._statics, self.path, self.static, "v3"
        )
        if offset != len(payload):
            raise InterpreterError(
                f"{self.path}: trailing bytes in v3 static table"
            )
        if self.events and self._statics == 0:
            raise InterpreterError(
                f"{self.path}: v3 trace has no static table"
            )

    @property
    def segment_count(self) -> int:
        return len(self._index)

    def _segment(self, offset, events, comp_len, crc) -> Trace:
        self._handle.seek(offset)
        frame = self._handle.read(comp_len)
        if len(frame) != comp_len or zlib.crc32(frame) != crc:
            raise InterpreterError(
                f"{self.path}: v3 segment CRC mismatch"
            )
        payload = _inflate(frame, self.path, "v3 segment")
        pc, sid, flags, next_pc, address = _read_event_columns(
            payload, events, self.path, "v3"
        )
        if events and max(sid) >= self._statics:
            raise InterpreterError(
                f"{self.path}: v3 static id out of range"
            )
        view = Trace.__new__(Trace)
        view.static = self.static
        view.pc = pc
        view.sid = sid
        view.flags = flags
        view.next_pc = next_pc
        view.address = address
        view._start = 0
        view._stop = events
        return view

    def segments(self):
        """Yield one read-only :class:`Trace` per stored segment."""
        for entry in self._index:
            yield self._segment(*entry)

    def __iter__(self):
        return self.segments()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SegmentedTraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_trace_segments(
    path: str | Path, segment_events: int | None = None
):
    """Iterate a stored trace segment by segment (single pass).

    v3 files stream lazily — one frame is resident at a time, and the
    backing file handle closes when the iterator is exhausted or
    dropped. v1/v2 files have no segment index, so they are
    materialised once and re-sliced into ``segment_events``-sized
    zero-copy views (compat path; the engine cache rewrites old
    entries to v3 on read, so this stays cold).
    """
    if trace_format(path) == 3:
        reader = SegmentedTraceReader(path)

        def _lazy():
            try:
                yield from reader.segments()
            finally:
                reader.close()

        return _lazy()
    trace = load_trace_columnar(path)
    if segment_events is None:
        segment_events = DEFAULT_SEGMENT_EVENTS
    return trace.segments(segment_events)


# -- format-agnostic loading -------------------------------------------------


def trace_format(path: str | Path) -> int:
    """On-disk format version of ``path`` (1, 2 or 3)."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(_MAGIC_V3))
    except OSError as error:
        raise InterpreterError(f"{path}: {error}") from None
    if head == _MAGIC_V3:
        return 3
    return 2 if head == _MAGIC_V2 else 1


def load_trace(path: str | Path) -> Trace | list[TraceEvent]:
    """Read a trace in any format.

    v2/v3 files load as a columnar :class:`Trace`; v1 text loads as
    the historical ``list[TraceEvent]`` (so v1-era callers see the
    exact type they stored). Use :func:`load_trace_columnar` for a
    uniform columnar result, or :func:`open_trace_segments` to stream
    a v3 file without materialising it.
    """
    with open(path, "rb") as handle:
        head = handle.read(len(_MAGIC_V3))
    if head == _MAGIC_V3:
        return _load_trace_v3(path, Path(path).read_bytes())
    if head == _MAGIC_V2:
        return _load_trace_v2(path, Path(path).read_bytes())
    return _load_trace_v1(path)


def load_trace_columnar(path: str | Path) -> Trace:
    """Read either format, always returning a columnar :class:`Trace`."""
    loaded = load_trace(path)
    if isinstance(loaded, Trace):
        return loaded
    return Trace.from_events(loaded)
