"""Trace serialisation.

Dynamic traces are expensive to regenerate (interpreting a kernel run)
but cheap to re-simulate under many core configurations, so persisting
them pays off for design-space sweeps. The format is a line-oriented
text file: a header line, then one record per event::

    pc op taken next_pc address dst src1,src2,...

with ``-`` for absent fields. The loader reconstructs
:class:`~repro.isa.trace.TraceEvent` objects directly (no program or
interpreter needed).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import InterpreterError
from repro.isa.instructions import OP_LATENCY, OP_OCCUPANCY, OP_UNIT, Op
from repro.isa.trace import TraceEvent

_MAGIC = "repro-trace v1"

_BRANCH_OPS = {Op.B, Op.BC}
_LOAD_OPS = {Op.LD, Op.LDX}
_STORE_OPS = {Op.ST, Op.STX}


def _restore_event(
    pc: int, op: Op, taken: bool, next_pc: int,
    address: int | None, dst: int | None, srcs: tuple[int, ...],
) -> TraceEvent:
    """Rebuild a TraceEvent without an Instruction object."""
    event = TraceEvent.__new__(TraceEvent)
    event.pc = pc
    event.op = op
    event.unit = OP_UNIT[op]
    event.latency = OP_LATENCY.get(op, 1)
    event.occupancy = OP_OCCUPANCY.get(op, 1)
    event.dst = dst
    event.srcs = srcs
    event.is_branch = op in _BRANCH_OPS
    event.is_conditional = op is Op.BC
    event.taken = taken
    event.next_pc = next_pc
    event.is_load = op in _LOAD_OPS
    event.is_store = op in _STORE_OPS
    event.address = address
    return event


def save_trace(path: str | Path, events: list[TraceEvent]) -> None:
    """Write ``events`` to ``path``."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{_MAGIC} {len(events)}\n")
        for event in events:
            address = "-" if event.address is None else str(event.address)
            dst = "-" if event.dst is None else str(event.dst)
            srcs = ",".join(map(str, event.srcs)) if event.srcs else "-"
            handle.write(
                f"{event.pc} {event.op.value} {int(event.taken)} "
                f"{event.next_pc} {address} {dst} {srcs}\n"
            )


def load_trace(path: str | Path) -> list[TraceEvent]:
    """Read a trace written by :func:`save_trace`."""
    with open(path, encoding="ascii") as handle:
        header = handle.readline().rstrip("\n")
        parts = header.rsplit(" ", 1)
        if len(parts) != 2 or parts[0] != _MAGIC:
            raise InterpreterError(f"{path}: not a repro trace file")
        try:
            expected = int(parts[1])
        except ValueError:
            raise InterpreterError(f"{path}: bad trace header") from None
        events: list[TraceEvent] = []
        for line_no, line in enumerate(handle, start=2):
            fields = line.split()
            if len(fields) != 7:
                raise InterpreterError(
                    f"{path}:{line_no}: malformed record"
                )
            pc_s, op_s, taken_s, next_s, address_s, dst_s, srcs_s = fields
            try:
                op = Op(op_s)
            except ValueError:
                raise InterpreterError(
                    f"{path}:{line_no}: unknown opcode {op_s!r}"
                ) from None
            events.append(
                _restore_event(
                    pc=int(pc_s),
                    op=op,
                    taken=taken_s == "1",
                    next_pc=int(next_s),
                    address=None if address_s == "-" else int(address_s),
                    dst=None if dst_s == "-" else int(dst_s),
                    srcs=(
                        ()
                        if srcs_s == "-"
                        else tuple(int(s) for s in srcs_s.split(","))
                    ),
                )
            )
    if len(events) != expected:
        raise InterpreterError(
            f"{path}: header promised {expected} events, found "
            f"{len(events)}"
        )
    return events
