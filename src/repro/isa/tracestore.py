"""Trace serialisation.

Dynamic traces are expensive to regenerate (interpreting a kernel run)
but cheap to re-simulate under many core configurations, so persisting
them pays off for design-space sweeps. Two formats coexist:

**v1 (text)** — a header line, then one record per event::

    pc op taken next_pc address dst src1,src2,...

with ``-`` for absent fields. Verbose but greppable; kept for
compatibility and for ``repro trace`` output.

**v2 (binary, columnar)** — mirrors :class:`~repro.isa.trace.Trace`
on disk: a versioned magic and event/static counts, then one
zlib-deflated payload holding the interned static table (opcode,
destination, sources — unit/latency/occupancy/flags are re-derived from
the opcode on load, exactly as the v1 loader does) followed by the five
event columns as contiguous little-endian arrays. Column data is
extremely regular (mostly-sequential pcs, tiny sid alphabet), so the
deflated form is typically 5-10x smaller than v1 text, and loading is
one ``decompress`` plus five ``array.frombytes`` — no per-event Python
parsing.

:func:`load_trace` sniffs the magic and accepts either format; the
engine's persistent cache writes v2 only (see
:data:`TRACE_FORMAT_VERSION`, which is folded into the cache digest).
Every structural problem — wrong magic, truncation, trailing garbage,
out-of-range ids — raises :class:`~repro.errors.InterpreterError`, so
callers (the engine cache) can evict instead of crashing.
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from pathlib import Path

from repro.errors import InterpreterError
from repro.isa.instructions import (
    OP_LATENCY,
    OP_LIST,
    OP_OCCUPANCY,
    OP_UNIT,
    Op,
)
from repro.isa.trace import Trace, TraceEvent

_MAGIC = "repro-trace v1"
_MAGIC_V2 = b"repro-trace v2\x00"
_HEADER_V2 = struct.Struct("<QI")

#: On-disk trace format the engine cache writes. Part of the cache
#: digest: bumping it invalidates every persisted trace wholesale.
TRACE_FORMAT_VERSION = 2

_BRANCH_OPS = {Op.B, Op.BC}
_LOAD_OPS = {Op.LD, Op.LDX}
_STORE_OPS = {Op.ST, Op.STX}


def _restore_event(
    pc: int, op: Op, taken: bool, next_pc: int,
    address: int | None, dst: int | None, srcs: tuple[int, ...],
) -> TraceEvent:
    """Rebuild a TraceEvent without an Instruction object."""
    event = TraceEvent.__new__(TraceEvent)
    event.pc = pc
    event.op = op
    event.unit = OP_UNIT[op]
    event.latency = OP_LATENCY.get(op, 1)
    event.occupancy = OP_OCCUPANCY.get(op, 1)
    event.dst = dst
    event.srcs = srcs
    event.is_branch = op in _BRANCH_OPS
    event.is_conditional = op is Op.BC
    event.taken = taken
    event.next_pc = next_pc
    event.is_load = op in _LOAD_OPS
    event.is_store = op in _STORE_OPS
    event.address = address
    return event


def save_trace(path: str | Path, events) -> None:
    """Write ``events`` (either trace form) to ``path`` as v1 text."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{_MAGIC} {len(events)}\n")
        for event in events:
            address = "-" if event.address is None else str(event.address)
            dst = "-" if event.dst is None else str(event.dst)
            srcs = ",".join(map(str, event.srcs)) if event.srcs else "-"
            handle.write(
                f"{event.pc} {event.op.value} {int(event.taken)} "
                f"{event.next_pc} {address} {dst} {srcs}\n"
            )


def _load_trace_v1(path: str | Path) -> list[TraceEvent]:
    """Read a v1 text trace into object form."""
    with open(path, encoding="ascii") as handle:
        header = handle.readline().rstrip("\n")
        parts = header.rsplit(" ", 1)
        if len(parts) != 2 or parts[0] != _MAGIC:
            raise InterpreterError(f"{path}: not a repro trace file")
        try:
            expected = int(parts[1])
        except ValueError:
            raise InterpreterError(f"{path}: bad trace header") from None
        events: list[TraceEvent] = []
        for line_no, line in enumerate(handle, start=2):
            fields = line.split()
            if len(fields) != 7:
                raise InterpreterError(
                    f"{path}:{line_no}: malformed record"
                )
            pc_s, op_s, taken_s, next_s, address_s, dst_s, srcs_s = fields
            try:
                op = Op(op_s)
            except ValueError:
                raise InterpreterError(
                    f"{path}:{line_no}: unknown opcode {op_s!r}"
                ) from None
            events.append(
                _restore_event(
                    pc=int(pc_s),
                    op=op,
                    taken=taken_s == "1",
                    next_pc=int(next_s),
                    address=None if address_s == "-" else int(address_s),
                    dst=None if dst_s == "-" else int(dst_s),
                    srcs=(
                        ()
                        if srcs_s == "-"
                        else tuple(int(s) for s in srcs_s.split(","))
                    ),
                )
            )
    if len(events) != expected:
        raise InterpreterError(
            f"{path}: header promised {expected} events, found "
            f"{len(events)}"
        )
    return events


# -- v2 binary ---------------------------------------------------------------


def _column_bytes(column: array, start: int, stop: int) -> bytes:
    """Little-endian bytes of ``column[start:stop]``."""
    chunk = column[start:stop]
    if sys.byteorder == "big":
        chunk.byteswap()
    return chunk.tobytes()


def save_trace_v2(path: str | Path, trace) -> None:
    """Write ``trace`` (either form) to ``path`` as v2 binary."""
    if not isinstance(trace, Trace):
        trace = Trace.from_events(trace)
    start, stop = trace._bounds()
    static = trace.static
    payload = bytearray()
    for sid in range(len(static)):
        srcs = static.srcs[sid]
        payload.append(static.ops[sid])
        payload.append(static.dsts[sid] & 0xFF)
        payload.append(len(srcs))
        payload.extend(srcs)
    payload += _column_bytes(trace.pc, start, stop)
    payload += _column_bytes(trace.sid, start, stop)
    payload += _column_bytes(trace.flags, start, stop)
    payload += _column_bytes(trace.next_pc, start, stop)
    payload += _column_bytes(trace.address, start, stop)
    with open(path, "wb") as handle:
        handle.write(_MAGIC_V2)
        handle.write(_HEADER_V2.pack(stop - start, len(static)))
        handle.write(zlib.compress(bytes(payload), 6))


def _read_column(
    data: bytes, offset: int, typecode: str, count: int, path
) -> tuple[array, int]:
    column = array(typecode)
    size = column.itemsize * count
    if offset + size > len(data):
        raise InterpreterError(f"{path}: truncated v2 trace")
    column.frombytes(data[offset : offset + size])
    if sys.byteorder == "big":
        column.byteswap()
    return column, offset + size


def _load_trace_v2(path: str | Path, data: bytes) -> Trace:
    """Decode a v2 binary trace (``data`` is the whole file)."""
    offset = len(_MAGIC_V2)
    if len(data) < offset + _HEADER_V2.size:
        raise InterpreterError(f"{path}: truncated v2 trace header")
    events, statics = _HEADER_V2.unpack_from(data, offset)
    offset += _HEADER_V2.size
    decompressor = zlib.decompressobj()
    try:
        payload = decompressor.decompress(data[offset:])
        payload += decompressor.flush()
    except zlib.error as error:
        raise InterpreterError(
            f"{path}: corrupt v2 trace payload ({error})"
        ) from None
    if not decompressor.eof:
        raise InterpreterError(f"{path}: truncated v2 trace payload")
    if decompressor.unused_data:
        raise InterpreterError(f"{path}: trailing bytes in v2 trace")
    data = payload
    offset = 0

    trace = Trace()
    static = trace.static
    for _ in range(statics):
        if offset + 3 > len(data):
            raise InterpreterError(f"{path}: truncated v2 static table")
        op_index = data[offset]
        dst = data[offset + 1]
        n_srcs = data[offset + 2]
        offset += 3
        if op_index >= len(OP_LIST) or n_srcs > 8:
            raise InterpreterError(f"{path}: corrupt v2 static record")
        if offset + n_srcs > len(data):
            raise InterpreterError(f"{path}: truncated v2 static table")
        srcs = tuple(data[offset : offset + n_srcs])
        offset += n_srcs
        if dst >= 0x80:
            dst -= 0x100
        sid = static.intern(op_index, dst, srcs)
        if sid != len(static) - 1:
            raise InterpreterError(f"{path}: duplicate v2 static record")

    trace.pc, offset = _read_column(data, offset, "q", events, path)
    trace.sid, offset = _read_column(data, offset, "i", events, path)
    trace.flags, offset = _read_column(data, offset, "B", events, path)
    trace.next_pc, offset = _read_column(data, offset, "q", events, path)
    trace.address, offset = _read_column(data, offset, "q", events, path)
    if offset != len(data):
        raise InterpreterError(f"{path}: trailing bytes in v2 trace")
    if events and statics == 0:
        raise InterpreterError(f"{path}: v2 trace has no static table")
    if events and max(trace.sid) >= statics:
        raise InterpreterError(f"{path}: v2 static id out of range")
    return trace


# -- format-agnostic loading -------------------------------------------------


def trace_format(path: str | Path) -> int:
    """On-disk format version of ``path`` (1 or 2)."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(_MAGIC_V2))
    except OSError as error:
        raise InterpreterError(f"{path}: {error}") from None
    return 2 if head == _MAGIC_V2 else 1


def load_trace(path: str | Path) -> Trace | list[TraceEvent]:
    """Read a trace in either format.

    v2 files load as a columnar :class:`Trace`; v1 text loads as the
    historical ``list[TraceEvent]`` (so v1-era callers see the exact
    type they stored). Use :func:`load_trace_columnar` for a uniform
    columnar result.
    """
    with open(path, "rb") as handle:
        head = handle.read(len(_MAGIC_V2))
    if head == _MAGIC_V2:
        return _load_trace_v2(path, Path(path).read_bytes())
    return _load_trace_v1(path)


def load_trace_columnar(path: str | Path) -> Trace:
    """Read either format, always returning a columnar :class:`Trace`."""
    loaded = load_trace(path)
    if isinstance(loaded, Trace):
        return loaded
    return Trace.from_events(loaded)
