"""Flat data memory with named segments.

Kernels address memory as word-granular offsets into one flat integer
array. Drivers allocate named segments (sequence codes, the flattened
substitution matrix, DP rows, ...) and pass the returned base addresses
to the kernel through registers.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import InterpreterError, InterpreterGuardError
from repro.guards import memory_ceiling


class Memory:
    """Word-addressed integer memory.

    Addresses are word indices (one "word" per int), which keeps the
    cache model simple: the L1D model converts word addresses to byte
    addresses with a fixed word size.

    A ``REPRO_MAX_MEMORY_WORDS`` ceiling (see :mod:`repro.guards`)
    bounds the backing allocation: a driver asking for more fails fast
    with a structured :class:`~repro.errors.InterpreterGuardError` instead of
    OOM'ing its worker process.
    """

    def __init__(self, size: int = 1 << 20) -> None:
        if size <= 0:
            raise InterpreterError(f"memory size must be positive, got {size}")
        ceiling = memory_ceiling()
        if ceiling is not None and size > ceiling:
            raise InterpreterGuardError(
                "simulated memory exceeds the configured ceiling",
                guard="memory.size",
                context={"requested_words": size, "ceiling_words": ceiling},
            )
        self._words = [0] * size
        self._next_free = 0
        self._segments: dict[str, tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._words)

    def alloc(self, name: str, data: Iterable[int] | int) -> int:
        """Allocate a named segment; returns its base address.

        ``data`` is either an iterable of initial words or an integer
        word count (zero-initialised).
        """
        if name in self._segments:
            raise InterpreterError(f"segment {name!r} already allocated")
        if isinstance(data, int):
            words = [0] * data
        else:
            words = [int(v) for v in data]
        base = self._next_free
        end = base + len(words)
        if end > len(self._words):
            raise InterpreterError(
                f"out of memory allocating {name!r} "
                f"({len(words)} words at {base})"
            )
        self._words[base:end] = words
        self._segments[name] = (base, len(words))
        self._next_free = end
        return base

    def segment(self, name: str) -> tuple[int, int]:
        """``(base, length)`` of a named segment."""
        try:
            return self._segments[name]
        except KeyError:
            raise InterpreterError(f"no segment named {name!r}") from None

    def segment_words(self, name: str) -> list[int]:
        """Copy of a named segment's current contents."""
        base, length = self.segment(name)
        return self._words[base : base + length]

    def load(self, address: int) -> int:
        """Read one word."""
        if not 0 <= address < len(self._words):
            raise InterpreterError(f"load address {address} out of range")
        return self._words[address]

    def store(self, address: int, value: int) -> None:
        """Write one word."""
        if not 0 <= address < len(self._words):
            raise InterpreterError(f"store address {address} out of range")
        self._words[address] = int(value)
