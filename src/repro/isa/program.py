"""Program container and builder for the mini-ISA.

A :class:`Program` is a flat instruction list with a label table; labels
are resolved to instruction indices at seal time. :class:`ProgramBuilder`
offers one emit method per opcode so kernels (and the compiler backend)
can be written fluently.
"""

from __future__ import annotations

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction, Op, validate


class Program:
    """A sealed instruction sequence with resolved branch targets."""

    def __init__(
        self, instructions: list[Instruction], labels: dict[str, int]
    ) -> None:
        self.instructions = instructions
        self.labels = labels
        self.targets: list[int | None] = []
        for instruction in instructions:
            if instruction.label is None:
                self.targets.append(None)
            else:
                if instruction.label not in labels:
                    raise AssemblyError(
                        f"undefined label {instruction.label!r}"
                    )
                self.targets.append(labels[instruction.label])

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def listing(self) -> str:
        """Readable assembly listing with label annotations."""
        by_index: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines: list[str] = []
        for index, instruction in enumerate(self.instructions):
            for label in by_index.get(index, ()):
                lines.append(f"{label}:")
            lines.append(f"    {instruction.render()}")
        return "\n".join(lines)


class ProgramBuilder:
    """Fluent builder producing a :class:`Program`."""

    def __init__(self) -> None:
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}

    def label(self, name: str) -> "ProgramBuilder":
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise AssemblyError(f"label {name!r} defined twice")
        self._labels[name] = len(self._instructions)
        return self

    def emit(self, instruction: Instruction) -> "ProgramBuilder":
        """Append a pre-built instruction."""
        validate(instruction)
        self._instructions.append(instruction)
        return self

    # -- convenience emitters ------------------------------------------

    def li(self, rd: int, imm: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.LI, rd=rd, imm=imm, comment=comment))

    def mr(self, rd: int, ra: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.MR, rd=rd, ra=ra, comment=comment))

    def add(self, rd: int, ra: int, rb: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.ADD, rd=rd, ra=ra, rb=rb, comment=comment))

    def addi(self, rd: int, ra: int, imm: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.ADDI, rd=rd, ra=ra, imm=imm, comment=comment))

    def sub(self, rd: int, ra: int, rb: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.SUB, rd=rd, ra=ra, rb=rb, comment=comment))

    def subi(self, rd: int, ra: int, imm: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.SUBI, rd=rd, ra=ra, imm=imm, comment=comment))

    def mul(self, rd: int, ra: int, rb: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.MUL, rd=rd, ra=ra, rb=rb, comment=comment))

    def muli(self, rd: int, ra: int, imm: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.MULI, rd=rd, ra=ra, imm=imm, comment=comment))

    def neg(self, rd: int, ra: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.NEG, rd=rd, ra=ra, comment=comment))

    def and_(self, rd: int, ra: int, rb: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.AND, rd=rd, ra=ra, rb=rb, comment=comment))

    def or_(self, rd: int, ra: int, rb: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.OR, rd=rd, ra=ra, rb=rb, comment=comment))

    def max(self, rd: int, ra: int, rb: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.MAX, rd=rd, ra=ra, rb=rb, comment=comment))

    def isel(
        self, rd: int, ra: int, rb: int, crf: int, crbit: int,
        comment: str = "",
    ) -> "ProgramBuilder":
        return self.emit(
            Instruction(
                Op.ISEL, rd=rd, ra=ra, rb=rb, crf=crf, crbit=crbit,
                comment=comment,
            )
        )

    def cmp(self, crf: int, ra: int, rb: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.CMP, crf=crf, ra=ra, rb=rb, comment=comment))

    def cmpi(self, crf: int, ra: int, imm: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.CMPI, crf=crf, ra=ra, imm=imm, comment=comment))

    def ld(self, rd: int, ra: int, imm: int = 0, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.LD, rd=rd, ra=ra, imm=imm, comment=comment))

    def ldx(self, rd: int, ra: int, rb: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.LDX, rd=rd, ra=ra, rb=rb, comment=comment))

    def st(self, rs: int, ra: int, imm: int = 0, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.ST, rd=rs, ra=ra, imm=imm, comment=comment))

    def stx(self, rs: int, ra: int, rb: int, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.STX, rd=rs, ra=ra, rb=rb, comment=comment))

    def b(self, label: str, comment: str = "") -> "ProgramBuilder":
        return self.emit(Instruction(Op.B, label=label, comment=comment))

    def bc(
        self, crf: int, crbit: int, label: str, want: bool = True,
        comment: str = "",
    ) -> "ProgramBuilder":
        return self.emit(
            Instruction(
                Op.BC, crf=crf, crbit=crbit, want=want, label=label,
                comment=comment,
            )
        )

    def nop(self) -> "ProgramBuilder":
        return self.emit(Instruction(Op.NOP))

    def halt(self) -> "ProgramBuilder":
        return self.emit(Instruction(Op.HALT))

    def build(self) -> Program:
        """Seal the builder into a :class:`Program`."""
        if not self._instructions:
            raise AssemblyError("cannot build an empty program")
        return Program(list(self._instructions), dict(self._labels))
