"""Command-line interface: ``python -m repro <command> ...``.

Small, scriptable entry points over the library — the shapes a
downstream user expects from the original tools:

========== ====================================================
command    does
========== ====================================================
align      pairwise alignment of the first two FASTA records
search     query vs database (blastp, fasta, or ssearch modes)
msa        Clustalw-style multiple alignment of a FASTA file
phylogeny  parsimony tree for a FASTA file (Newick output)
orfs       ORF scan / Glimmer gene prediction on DNA
simulate   run an application kernel on the POWER5 core model
asm        print a kernel's mini-ISA assembly per variant
trace      dump a kernel trace / re-simulate a saved one
experiments reproduce the paper's tables/figures (engine-backed)
bpred      branch-prediction lab: compare / rank / sweep predictors
accel      accelerator lab: compare offload classes, sweep design knobs
cache      inspect / clear / gc the persistent simulation cache
runs       list / prune the durable sweep run journals
resume     continue an interrupted journaled sweep
serve      run the sweep-service HTTP front end
submit     submit a sweep to a running service
jobs       list / show / cancel / stream service jobs
work       drain one journaled run as a claim-based worker
========== ====================================================
"""

from __future__ import annotations

import argparse
import sys

from repro.bio.blast import BlastDatabase, blastp
from repro.bio.fasta_io import read_fasta
from repro.bio.fastatool import fasta_search, ssearch
from repro.bio.genefind import find_orfs, glimmer
from repro.bio.msa import clustalw
from repro.bio.pairwise import needleman_wunsch, smith_waterman
from repro.bio.phylo import phylip
from repro.bio.scoring import BLOSUM62, PAM250, GapPenalties, default_matrix
from repro.errors import ReproError, SweepInterrupted
from repro.perf.characterize import VARIANTS
from repro.perf.report import Table, percent
from repro.uarch.config import power5

_MATRICES = {"blosum62": BLOSUM62, "pam250": PAM250}


def _porcelain_row(*fields) -> str:
    """One tab-separated machine-readable line, fixed arity.

    ``None`` renders as ``-`` so a missing value still occupies its
    column — porcelain consumers index by position, and a journal
    written before some record type existed must not shift the fields
    that come after it.
    """
    return "\t".join(
        "-" if value is None else str(value) for value in fields
    )


def _load(path: str, minimum: int = 1):
    records = read_fasta(path)
    if len(records) < minimum:
        raise ReproError(
            f"{path}: need at least {minimum} FASTA records, "
            f"found {len(records)}"
        )
    return records


def _matrix_for(args, records):
    if args.matrix == "auto":
        return default_matrix(records[0].alphabet)
    return _MATRICES[args.matrix]


def cmd_align(args) -> int:
    records = _load(args.fasta, minimum=2)
    a, b = records[0], records[1]
    matrix = _matrix_for(args, records)
    gaps = GapPenalties(args.gap_open, args.gap_extend)
    if args.mode == "global":
        alignment = needleman_wunsch(a, b, matrix, gaps)
    else:
        alignment = smith_waterman(a, b, matrix, gaps)
    print(f"# {a.id} vs {b.id} ({args.mode}, {matrix.name})")
    print(f"# score {alignment.score}, identity {alignment.identity:.1%}")
    print(alignment.pretty())
    return 0


def cmd_search(args) -> int:
    query = _load(args.query)[0]
    database = _load(args.database)
    if args.mode == "blast":
        hits = blastp(query, BlastDatabase(database))
        print(f"# blastp: {len(hits)} hits")
        for hit in hits[: args.top]:
            best = hit.best
            print(
                f"{hit.subject.id}\tbits={best.bit_score:.1f}\t"
                f"evalue={best.evalue:.2e}\t"
                f"q={best.query_start}-{best.query_end}"
            )
    elif args.mode == "fasta":
        hits = fasta_search(query, database)
        print(f"# fasta (ktup): {len(hits)} hits")
        for hit in hits[: args.top]:
            print(
                f"{hit.subject.id}\tinit1={hit.init1}\t"
                f"initn={hit.initn}\topt={hit.opt}"
            )
    else:
        hits = ssearch(query, database)
        print(f"# ssearch (full Smith-Waterman): {len(hits)} hits")
        for hit in hits[: args.top]:
            print(f"{hit.subject.id}\tscore={hit.score}")
    return 0


def cmd_msa(args) -> int:
    records = _load(args.fasta, minimum=2)
    msa = clustalw(records, tree_method=args.tree)
    print(f"# {len(records)} sequences, {msa.width} columns")
    print(f"# guide tree: {msa.tree.newick()}")
    print(msa.pretty())
    return 0


def cmd_phylogeny(args) -> int:
    records = _load(args.fasta, minimum=3)
    result = phylip(records, max_rounds=args.rounds)
    newick = result.tree.newick()
    for index in sorted(range(len(records)), reverse=True):
        newick = newick.replace(str(index), records[index].id)
    print(f"# parsimony score {result.score} "
          f"({result.evaluated} trees evaluated)")
    print(newick + ";")
    return 0


def cmd_orfs(args) -> int:
    genome = _load(args.fasta)[0]
    if args.train:
        training = [record.residues for record in _load(args.train)]
        predictions = glimmer(
            genome, training, min_length=args.min_length,
            max_order=args.order,
        )
        print(f"# glimmer: {len(predictions)} predicted genes")
        for prediction in predictions:
            orf = prediction.orf
            print(
                f"{orf.start}\t{orf.end}\t{'+' if orf.strand > 0 else '-'}"
                f"\tscore={prediction.score:.3f}"
            )
    else:
        orfs = find_orfs(genome, min_length=args.min_length)
        print(f"# {len(orfs)} ORFs >= {args.min_length} bp")
        for orf in orfs:
            print(
                f"{orf.start}\t{orf.end}\t"
                f"{'+' if orf.strand > 0 else '-'}\tlen={orf.length}"
            )
    return 0


def cmd_asm(args) -> int:
    from repro.kernels import listing_for

    print(f"# {args.app} kernel, {args.variant} variant")
    print(listing_for(args.app, args.variant))
    return 0


def cmd_trace(args) -> int:
    from repro.isa.tracestore import load_trace, save_trace
    from repro.perf.characterize import kernel_trace
    from repro.uarch.core import simulate_trace

    if args.stats:
        from collections import Counter

        from repro.isa.trace import opcode_histogram, trace_statistics
        from repro.isa.tracestore import open_trace_segments

        if args.load:
            segments = open_trace_segments(args.load)
            label = args.load
        else:
            if args.app is None:
                raise ReproError("trace --stats: give an app or --load FILE")
            from repro.perf.characterize import kernel_trace_segments

            segments = kernel_trace_segments(args.app, args.variant)
            label = f"{args.app}/{args.variant}"
        histogram: Counter = Counter()

        def tally(chunks):
            # One pass feeds both accumulators with O(segment) memory.
            for segment in chunks:
                histogram.update(opcode_histogram(segment))
                yield segment

        stats = trace_statistics(tally(segments))
        print(f"# {label}: {stats.instructions} instructions")
        print(f"branches={stats.branches} "
              f"cond={stats.conditional_branches} "
              f"({percent(stats.branch_fraction)} of instructions, "
              f"{percent(stats.taken_fraction)} taken)")
        print(f"loads={stats.loads} stores={stats.stores} "
              f"(ld/st {percent(stats.load_store_fraction)})")
        print(f"fxu={stats.fxu_ops} max={stats.max_ops} "
              f"isel={stats.isel_ops} cmp={stats.cmp_ops}")
        for op, count in histogram.most_common(10):
            print(f"{op}\t{count}")
        return 0

    if args.load:
        trace = load_trace(args.load)
        result = simulate_trace(trace, power5())
        print(f"# {args.load}: {result.instructions} instructions")
        print(f"cycles={result.cycles} ipc={result.ipc:.2f}")
        print(f"branch_mispredict={result.branch_mispredict_rate:.1%} "
              f"l1d_miss={result.cache.miss_rate:.2%}")
        return 0
    trace = kernel_trace(args.app, args.variant)
    save_trace(args.output, trace)
    print(f"# wrote {len(trace)} events to {args.output}")
    return 0


def cmd_simulate(args) -> int:
    from repro.engine.engine import default_engine

    config = power5().with_fxus(args.fxus)
    if args.btac:
        config = config.with_btac()
    table = Table(
        f"{args.app} on the POWER5 model "
        f"({args.fxus} FXUs{', BTAC' if args.btac else ''})",
        ["Variant", "work IPC", "Branch mispredict", "L1D miss"],
    )
    engine = default_engine()
    variants = VARIANTS if args.variant == "all" else (args.variant,)
    engine.prefetch(
        [(args.app, variant, config) for variant in variants],
        jobs=args.jobs,
    )
    for variant in variants:
        result = engine.characterize(args.app, variant, config)
        table.add_row(
            variant,
            f"{result.work_ipc:.2f}",
            percent(result.merged.branch_mispredict_rate),
            percent(result.merged.cache.miss_rate, 2),
        )
    print(table.render())
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(args.args)


def cmd_bpred(args) -> int:
    from repro.bpred.predictors import predictor_kinds
    from repro.bpred.lab import (
        cached_characterisation,
        cached_replay,
        ranked_sites,
        spec_for,
        stream_for,
    )
    from repro.engine.cache import use_cache_dir

    if args.cache_dir is not None:
        use_cache_dir(args.cache_dir)

    if args.action == "compare":
        kinds = args.kinds.split(",") if args.kinds else predictor_kinds()
        results = [
            (kind, cached_replay(args.app, args.variant, kind))
            for kind in kinds
        ]
        if args.porcelain:
            # One predictor per line, tab-separated, stable field order
            # (consistent with `repro runs --porcelain`): kind, branches,
            # mispredictions, rate, mpki.
            for kind, result in results:
                print(_porcelain_row(
                    kind,
                    result.branches,
                    result.mispredictions,
                    f"{result.misprediction_rate:.6f}",
                    f"{result.mpki:.3f}",
                ))
            return 0
        table = Table(
            f"Direction predictors on the {args.app} kernel "
            f"({args.variant})",
            ["Predictor", "Branches", "Mispredicts", "Rate", "MPKI"],
        )
        for kind, result in results:
            table.add_row(
                kind,
                result.branches,
                result.mispredictions,
                percent(result.misprediction_rate),
                f"{result.mpki:.2f}",
            )
        print(table.render())
        return 0

    if args.action == "rank":
        sites = ranked_sites(
            args.app, args.variant, spec=args.spec, limit=args.top
        )
        characterisation = cached_characterisation(
            args.app, args.variant, spec=args.spec
        )
        if args.porcelain:
            # One branch per line: pc, location, executions, taken_rate,
            # entropy, transition_rate, mispredictions, mpki.
            for site in sites:
                profile = site.profile
                print(_porcelain_row(
                    profile.pc,
                    site.location,
                    profile.executions,
                    f"{profile.taken_rate:.6f}",
                    f"{profile.entropy:.6f}",
                    f"{profile.transition_rate:.6f}",
                    profile.mispredictions,
                    f"{profile.mpki:.3f}",
                ))
            return 0
        table = Table(
            f"Hardest branches of the {args.app} kernel "
            f"({args.variant}, {args.spec} reference)",
            ["Location", "Source", "Execs", "Taken", "Entropy",
             "Flips", "MPKI"],
        )
        for site in sites:
            profile = site.profile
            table.add_row(
                site.location,
                site.source,
                profile.executions,
                percent(profile.taken_rate),
                f"{profile.entropy:.2f}",
                percent(profile.transition_rate),
                f"{profile.mpki:.2f}",
            )
        print(table.render())
        covered = characterisation.coverage(args.top)
        print(
            f"\n# top {args.top} branches explain {covered:.1%} of "
            f"{characterisation.total_mispredictions} mispredictions "
            f"({characterisation.mpki:.2f} MPKI)"
        )
        return 0

    # sweep: one kind across table/history geometries.
    stream = stream_for(args.app, args.variant)
    table_bits = [int(b) for b in args.table_bits.split(",")]
    history_bits = [int(b) for b in args.history_bits.split(",")]
    rows = []
    for bits in table_bits:
        for history in history_bits:
            spec = spec_for(args.kind, bits, history)
            result = cached_replay(args.app, args.variant, spec)
            rows.append((spec, result))
    if args.porcelain:
        # kind, table_bits, history_bits, branches, mispredictions,
        # rate, mpki.
        for spec, result in rows:
            print(_porcelain_row(
                spec.kind,
                spec.table_bits,
                spec.history_bits,
                result.branches,
                result.mispredictions,
                f"{result.misprediction_rate:.6f}",
                f"{result.mpki:.3f}",
            ))
        return 0
    table = Table(
        f"{args.kind} geometry sweep on the {args.app} kernel "
        f"({args.variant}, {len(stream)} branches)",
        ["Table bits", "History bits", "Mispredicts", "Rate", "MPKI"],
    )
    for spec, result in rows:
        table.add_row(
            spec.table_bits,
            spec.history_bits,
            result.mispredictions,
            percent(result.misprediction_rate),
            f"{result.mpki:.2f}",
        )
    print(table.render())
    return 0


def cmd_accel(args) -> int:
    from dataclasses import fields as dataclass_fields
    from dataclasses import replace

    from repro.accel import AccelConfig, aphmm, bioseal, supported_backends
    from repro.engine.cache import use_cache_dir
    from repro.engine.engine import default_engine

    if args.cache_dir is not None:
        use_cache_dir(args.cache_dir)
    engine = default_engine()

    backend = args.backend
    if backend == "auto":
        backend = supported_backends(args.app)[0]
    base = bioseal() if backend == "bioseal" else aphmm()

    if args.action == "compare":
        classes = args.classes.split(",")
        points = [
            (args.app, args.variant, base.with_class(cls))
            for cls in classes
        ]
        engine.prefetch(points, jobs=args.jobs)
        rows = [
            (cls, engine.characterize(args.app, args.variant, config))
            for (_, _, config), cls in zip(points, classes)
        ]
        if args.porcelain:
            # One class per line, tab-separated, stable field order
            # (consistent with `repro bpred --porcelain`): class,
            # backend, jobs, cells, host cycles, device cycles,
            # transfer cycles, invocation cycles, utilization,
            # overhead share, energy.
            for cls, est in rows:
                print(_porcelain_row(
                    cls,
                    est.backend,
                    est.jobs,
                    est.cells,
                    est.cycles,
                    est.result.device_cycles,
                    est.result.transfer_cycles,
                    est.result.invocation_cycles,
                    f"{est.utilization:.6f}",
                    f"{est.overhead_share:.6f}",
                    est.energy_pj,
                ))
            return 0
        table = Table(
            f"{backend} offload of the {args.app} kernels "
            f"({args.variant} workloads)",
            ["Class", "Jobs", "DP cells", "Host cycles", "Device cycles",
             "Utilization", "Overhead", "Energy (pJ)"],
        )
        for cls, est in rows:
            table.add_row(
                cls,
                est.jobs,
                est.cells,
                est.cycles,
                est.result.device_cycles,
                percent(est.utilization),
                percent(est.overhead_share),
                est.energy_pj,
            )
        print(table.render())
        return 0

    # sweep: one integer design knob across values at a fixed class.
    sweepable = {
        field.name for field in dataclass_fields(AccelConfig)
        if field.name not in ("backend", "input_class")
    }
    if args.param not in sweepable:
        raise ReproError(
            f"accel sweep: unknown knob {args.param!r}; "
            f"have {', '.join(sorted(sweepable))}"
        )
    values = [int(value) for value in args.values.split(",")]
    anchored = base.with_class(args.input_class)
    configs = [
        replace(anchored, **{args.param: value}) for value in values
    ]
    points = [(args.app, args.variant, config) for config in configs]
    engine.characterize_many(points, jobs=args.jobs)
    rows = [
        (value, engine.characterize(args.app, args.variant, config))
        for value, config in zip(values, configs)
    ]
    if args.porcelain:
        # param, value, host cycles, device cycles, utilization,
        # overhead share, energy.
        for value, est in rows:
            print(_porcelain_row(
                args.param,
                value,
                est.cycles,
                est.result.device_cycles,
                f"{est.utilization:.6f}",
                f"{est.overhead_share:.6f}",
                est.energy_pj,
            ))
        return 0
    table = Table(
        f"{backend} {args.param} sweep on the {args.app} kernels "
        f"(class {args.input_class})",
        [args.param, "Host cycles", "Device cycles", "Utilization",
         "Overhead", "Energy (pJ)"],
    )
    for value, est in rows:
        table.add_row(
            value,
            est.cycles,
            est.result.device_cycles,
            percent(est.utilization),
            percent(est.overhead_share),
            est.energy_pj,
        )
    print(table.render())
    return 0


def cmd_cache(args) -> int:
    from repro.engine.cache import active_cache, use_cache_dir
    from repro.engine.digest import CACHE_SCHEMA_VERSION, sim_source_digest
    from repro.isa.tracestore import TRACE_FORMAT_VERSION

    if args.cache_dir is not None:
        use_cache_dir(args.cache_dir)
    cache = active_cache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"# removed {removed} cached files from {cache.root}")
        return 0
    if args.action == "gc":
        report = cache.gc(tmp_max_age_seconds=args.tmp_max_age)
        print(
            f"# gc {cache.root}: removed {report['tmp_removed']} orphaned "
            f"tmp file(s), scanned {report['scanned']} entries, "
            f"quarantined {report['quarantined']} corrupt entr"
            f"{'y' if report['quarantined'] == 1 else 'ies'}"
        )
        return 0
    stats = cache.stats()
    table = Table(
        f"Persistent simulation cache ({cache.root})",
        ["Field", "Value"],
    )
    table.add_row("enabled", "yes" if cache.enabled else "no (REPRO_CACHE=off)")
    table.add_row("schema version", CACHE_SCHEMA_VERSION)
    table.add_row("trace format", f"v{TRACE_FORMAT_VERSION} (binary columnar)")
    table.add_row("kernel-source digest", sim_source_digest()[:12])
    table.add_row("trace entries", stats["trace_entries"])
    table.add_row("result entries", stats["result_entries"])
    table.add_row("quarantined entries", stats["quarantine_entries"])
    table.add_row("total bytes", stats["total_bytes"])
    print(table.render())
    return 0


def _age_label(seconds: float) -> str:
    """Compact human age: ``42s``, ``7m``, ``3.2h``, ``5.1d``."""
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def cmd_runs(args) -> int:
    from repro.engine import journal
    from repro.engine.cache import active_cache, use_cache_dir

    if args.cache_dir is not None:
        use_cache_dir(args.cache_dir)
    cache = active_cache()
    if not cache.enabled:
        raise ReproError(
            "run journals live in the persistent cache "
            "(REPRO_CACHE=off disables them)"
        )
    if args.action == "prune":
        removed = journal.prune_runs(
            cache.root,
            max_age_seconds=args.max_age,
            include_resumable=args.include_resumable,
        )
        print(
            f"# pruned {removed} journal(s) from "
            f"{journal.runs_root(cache.root)}"
        )
        return 0
    import warnings as _warnings

    with _warnings.catch_warnings():
        # Corrupt neighbours are rendered as rows below; the warning
        # channel is for library consumers, not the CLI listing.
        _warnings.simplefilter("ignore", journal.JournalWarning)
        states = journal.list_runs(cache.root)
    if args.porcelain:
        # One run per line, tab-separated, stable field order — for CI
        # scripts (the interrupt-resume smoke job greps this). New
        # fields append at the end so positional consumers keep
        # working, and journals predating a record type get padded
        # zeros in its columns rather than fewer fields.
        for state in states:
            print(_porcelain_row(
                state.run_id,
                state.status,
                len(state.done),
                len(state.failed),
                len(state.unique_keys),
                f"{state.age_seconds():.0f}",
                (state.batch or {}).get("points", 0),
                (state.stream or {}).get("segments_consumed", 0),
                len(state.workers),
            ))
        return 0
    if not states:
        print(f"# no run journals under {journal.runs_root(cache.root)}")
        return 0
    table = Table(
        f"Run journals ({journal.runs_root(cache.root)})",
        ["Run", "Status", "Done", "Failed", "Points", "Batched",
         "Workers", "Age"],
    )
    for state in states:
        batch = state.batch or {}
        batched = batch.get("points", 0)
        groups = batch.get("groups", 0)
        table.add_row(
            state.run_id,
            state.status,
            len(state.done),
            len(state.failed),
            len(state.unique_keys),
            f"{batched} in {groups}" if batched else "-",
            len(state.workers) or "-",
            _age_label(state.age_seconds()),
        )
    print(table.render())
    print(
        "\n# resume an interrupted run with: repro resume <run>; "
        "'corrupt' journals cannot be resumed"
    )
    return 0


def cmd_resume(args) -> int:
    from repro.engine.cache import use_cache_dir
    from repro.engine.engine import Engine

    if args.cache_dir is not None:
        use_cache_dir(args.cache_dir)
    # A fresh engine bound to the *currently* active cache: the shared
    # default engine may have been constructed against another cache
    # directory earlier in this process.
    engine = Engine()
    outcome = engine.resume(
        args.run_id,
        jobs=args.jobs,
        on_error="keep_going" if args.keep_going else "raise",
    )
    print(
        f"# run {outcome.run_id}: {outcome.unique_points} unique points "
        f"({outcome.total_points} requested), {outcome.replayed} replayed "
        f"from the journal, {outcome.submitted} re-submitted"
    )
    if outcome.source_changed:
        print(
            "# note: simulation sources changed since the journal was "
            "written; every point was re-run"
        )
    failed = sum(1 for result in outcome.results if result is None)
    if failed:
        print(f"# {failed} point(s) still failing")
    if not args.no_telemetry:
        print()
        print(engine.stats.render())
    return 0


def cmd_serve(args) -> int:
    from repro.engine.cache import active_cache, use_cache_dir
    from repro.service.server import serve

    if args.cache_dir is not None:
        use_cache_dir(args.cache_dir)
    cache = active_cache()
    if not cache.enabled:
        raise ReproError(
            "the sweep service journals through the persistent cache "
            "(REPRO_CACHE=off disables it)"
        )
    token = args.token
    if token is None:
        import os as _os

        from repro.service.remote import ENV_TOKEN

        token = _os.environ.get(ENV_TOKEN) or None
    print(
        f"# sweep service on http://{args.host}:{args.port} "
        f"(cache {cache.root}, {args.workers} workers/job, "
        f"queue<={args.max_queue}, quota {args.tenant_quota}/tenant, "
        f"auth {'on' if token else 'off'})"
    )
    serve(
        cache.root,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        token=token,
        max_queue=args.max_queue,
        tenant_quota=args.tenant_quota,
        workers=args.workers,
        lease_seconds=args.lease,
    )
    return 0


def cmd_submit(args) -> int:
    from repro.engine.serialize import config_to_dict
    from repro.service.client import ServiceClient

    config = power5().with_fxus(args.fxus)
    if args.btac:
        config = config.with_btac()
    variants = args.variants.split(",") if args.variants else ["baseline"]
    points = [
        {"app": app, "variant": variant, "config": config_to_dict(config)}
        for app in args.apps.split(",")
        for variant in variants
    ]
    client = ServiceClient(args.url)
    job = client.submit(points, tenant=args.tenant, workers=args.workers)
    print(
        f"# job {job['job_id']} {job['state']} "
        f"({len(points)} points, tenant {job['tenant']})"
    )
    if not args.wait:
        return 0
    final = client.wait(job["job_id"], timeout=args.timeout)
    print(f"# job {final['job_id']} {final['state']}")
    for row in client.results(job["job_id"]):
        print(_porcelain_row(
            row["app"],
            row["variant"],
            row["config_digest"][:12],
            row["result_digest"][:12],
        ))
    return 0 if final["state"] == "complete" else 1


def cmd_jobs(args) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.action in ("show", "cancel", "results") and not args.job_id:
        raise ReproError(f"jobs {args.action}: give a job id")

    if args.action == "stats":
        stats = client.stats()
        table = Table(f"Sweep service ({args.url})", ["Field", "Value"])
        for key in ("queue_depth", "queue_peak", "admitted",
                    "rejected_queue", "rejected_quota", "completed",
                    "failed", "cancelled", "interrupted"):
            table.add_row(key, stats.get(key, 0))
        print(table.render())
        for tenant, record in sorted(stats.get("tenants", {}).items()):
            print(
                f"# tenant {tenant}: "
                f"admitted={record.get('admitted', 0)} "
                f"rejected={record.get('rejected', 0)} "
                f"completed={record.get('completed', 0)}"
            )
        return 0
    if args.action == "cancel":
        job = client.cancel(args.job_id)
        print(f"# job {job['job_id']} {job['state']}")
        return 0
    if args.action == "show":
        job = client.job(args.job_id)
        progress = job.get("progress", {})
        print(
            f"# job {job['job_id']} {job['state']} "
            f"tenant={job['tenant']} points={job['points']} "
            f"done={progress.get('done', 0)} "
            f"failed={progress.get('failed', 0)} "
            f"workers={','.join(progress.get('workers', [])) or '-'}"
        )
        return 0
    if args.action == "results":
        for row in client.results(args.job_id, wait=args.wait):
            print(_porcelain_row(
                row["app"],
                row["variant"],
                row["config_digest"],
                row["result_digest"],
            ))
        return 0
    jobs = client.jobs()
    if args.porcelain:
        for job in jobs:
            print(_porcelain_row(
                job["job_id"], job["state"], job["tenant"],
                job["points"], job["workers"],
            ))
        return 0
    if not jobs:
        print(f"# no jobs at {args.url}")
        return 0
    table = Table(
        f"Sweep service jobs ({args.url})",
        ["Job", "State", "Tenant", "Points", "Workers"],
    )
    for job in jobs:
        table.add_row(
            job["job_id"], job["state"], job["tenant"],
            job["points"], job["workers"],
        )
    print(table.render())
    return 0


def cmd_work(args) -> int:
    from repro.engine.cache import active_cache, use_cache_dir
    from repro.service.worker import drain_run, drain_run_remote

    if args.url:
        # Networked worker: claims over the job API, cache entries over
        # the HTTP transport, resilience layer absorbing the network.
        report = drain_run_remote(
            args.url,
            args.run_id,
            cache_root=args.cache_dir,
            worker_id=args.worker_id,
            lease_seconds=args.lease,
            max_points=args.max_points,
            token=args.token,
        )
        stats = report.stats
        print(
            f"# worker {report.worker_id} drained run {report.run_id} "
            f"via {args.url}: {len(report.completed)} completed, "
            f"{len(report.failed)} failed (claims={stats.claims}, "
            f"heartbeats={stats.heartbeats}, "
            f"lost_leases={stats.lost_leases})"
        )
        return 1 if report.failed else 0

    if args.cache_dir is not None:
        use_cache_dir(args.cache_dir)
    cache = active_cache()
    if not cache.enabled:
        raise ReproError(
            "workers journal through the persistent cache "
            "(REPRO_CACHE=off disables it)"
        )
    report = drain_run(
        cache.root,
        args.run_id,
        worker_id=args.worker_id,
        lease_seconds=args.lease,
        max_points=args.max_points,
    )
    # The worker that drains the last point seals the run (a second
    # footer from a racing worker is identical and harmless).
    from repro.engine.journal import RunJournal, load_run

    state = load_run(cache.root, args.run_id)
    if not state.pending_keys() and not state.complete:
        with RunJournal.attach(cache.root, args.run_id) as run_journal:
            run_journal.record_complete(len(state.failed))
    stats = report.stats
    print(
        f"# worker {report.worker_id} drained run {report.run_id}: "
        f"{len(report.completed)} completed, {len(report.failed)} failed "
        f"(claims={stats.claims}, conflicts={stats.claim_conflicts}, "
        f"steals={stats.claim_steals}, heartbeats={stats.heartbeats})"
    )
    return 1 if report.failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Bioinformatics workloads + POWER5-like simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_align = sub.add_parser("align", help="pairwise alignment")
    p_align.add_argument("fasta", help="FASTA with >= 2 records")
    p_align.add_argument("--mode", choices=["local", "global"],
                         default="local")
    p_align.add_argument("--matrix", choices=["auto", "blosum62", "pam250"],
                         default="auto")
    p_align.add_argument("--gap-open", type=int, default=10)
    p_align.add_argument("--gap-extend", type=int, default=2)
    p_align.set_defaults(func=cmd_align)

    p_search = sub.add_parser("search", help="query vs database")
    p_search.add_argument("query")
    p_search.add_argument("database")
    p_search.add_argument("--mode", choices=["blast", "fasta", "ssearch"],
                          default="blast")
    p_search.add_argument("--top", type=int, default=10)
    p_search.set_defaults(func=cmd_search)

    p_msa = sub.add_parser("msa", help="multiple sequence alignment")
    p_msa.add_argument("fasta")
    p_msa.add_argument("--tree", choices=["upgma", "nj"], default="upgma")
    p_msa.set_defaults(func=cmd_msa)

    p_phy = sub.add_parser("phylogeny", help="parsimony tree")
    p_phy.add_argument("fasta")
    p_phy.add_argument("--rounds", type=int, default=5)
    p_phy.set_defaults(func=cmd_phylogeny)

    p_orf = sub.add_parser("orfs", help="ORF scan / gene prediction")
    p_orf.add_argument("fasta", help="DNA FASTA (first record scanned)")
    p_orf.add_argument("--train", help="FASTA of known coding sequences")
    p_orf.add_argument("--min-length", type=int, default=90)
    p_orf.add_argument("--order", type=int, default=3)
    p_orf.set_defaults(func=cmd_orfs)

    p_asm = sub.add_parser(
        "asm", help="print a kernel's assembly listing"
    )
    p_asm.add_argument("app", choices=["blast", "clustalw", "fasta",
                                       "hmmer", "phylip"])
    p_asm.add_argument("variant", nargs="?", default="baseline")
    p_asm.set_defaults(func=cmd_asm)

    p_trace = sub.add_parser(
        "trace", help="dump a kernel trace / re-simulate a saved one"
    )
    p_trace.add_argument("app", nargs="?",
                         choices=["blast", "clustalw", "fasta", "hmmer"])
    p_trace.add_argument("variant", nargs="?", default="baseline")
    p_trace.add_argument("output", nargs="?", default="kernel.trace")
    p_trace.add_argument("--load", help="re-simulate a saved trace file")
    p_trace.add_argument("--stats", action="store_true",
                         help="print instruction-mix statistics and the "
                              "opcode histogram, streamed segment by "
                              "segment in bounded memory")
    p_trace.set_defaults(func=cmd_trace)

    p_sim = sub.add_parser("simulate", help="core-model characterisation")
    p_sim.add_argument("app", choices=["blast", "clustalw", "fasta",
                                       "hmmer"])
    p_sim.add_argument("--variant", default="all",
                       choices=list(VARIANTS) + ["all"])
    p_sim.add_argument("--fxus", type=int, default=2)
    p_sim.add_argument("--btac", action="store_true")
    p_sim.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                       help="worker processes for variant fan-out")
    p_sim.set_defaults(func=cmd_simulate)

    p_exp = sub.add_parser(
        "experiments",
        help="reproduce the paper's tables/figures through the engine",
    )
    p_exp.add_argument(
        "args", nargs=argparse.REMAINDER,
        help="arguments for 'python -m repro.experiments' "
             "(experiment ids, --jobs, --cache-dir, --telemetry-json, ...)",
    )
    p_exp.set_defaults(func=cmd_experiments)

    p_bpred = sub.add_parser(
        "bpred",
        help="branch-prediction lab: compare schemes, rank hard "
             "branches, sweep geometries",
    )
    p_bpred.add_argument("action", choices=["compare", "rank", "sweep"])
    p_bpred.add_argument("app", choices=["blast", "clustalw", "fasta",
                                         "hmmer"])
    p_bpred.add_argument("--variant", default="baseline",
                         choices=list(VARIANTS))
    p_bpred.add_argument("--kinds", default=None, metavar="K1,K2,...",
                         help="compare only: comma-separated predictor "
                              "kinds (default: all registered)")
    p_bpred.add_argument("--spec", default="gshare", metavar="KIND",
                         help="rank only: reference predictor "
                              "(default: gshare)")
    p_bpred.add_argument("--top", type=int, default=10, metavar="N",
                         help="rank only: branches to show (default: 10)")
    p_bpred.add_argument("--kind", default="gshare", metavar="KIND",
                         help="sweep only: predictor kind to sweep")
    p_bpred.add_argument("--table-bits", default="8,10,12,14",
                         metavar="B1,B2,...",
                         help="sweep only: table sizes (default: "
                              "8,10,12,14)")
    p_bpred.add_argument("--history-bits", default="10",
                         metavar="H1,H2,...",
                         help="sweep only: history lengths (default: 10; "
                              "clamped to table bits for gshare-like "
                              "schemes)")
    p_bpred.add_argument("--porcelain", action="store_true",
                         help="tab-separated machine-readable output "
                              "(stable field order per action)")
    p_bpred.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory (default: REPRO_CACHE_DIR "
                              "or ~/.cache/repro-power5)")
    p_bpred.set_defaults(func=cmd_bpred)

    p_accel = sub.add_parser(
        "accel",
        help="accelerator lab: compare offload workload classes, sweep "
             "design knobs",
    )
    p_accel.add_argument("action", choices=["compare", "sweep"])
    p_accel.add_argument("app", choices=["blast", "clustalw", "fasta",
                                         "hmmer"])
    p_accel.add_argument("--variant", default="baseline",
                         choices=list(VARIANTS),
                         help="result-slot variant the estimates file "
                              "under (estimates are variant-independent)")
    p_accel.add_argument("--backend", default="auto",
                         choices=["auto", "bioseal", "aphmm"],
                         help="timing model (default: the one serving "
                              "this app's kernel batches)")
    p_accel.add_argument("--classes", default="A,B,C", metavar="C1,C2,...",
                         help="compare only: workload classes "
                              "(default: A,B,C)")
    p_accel.add_argument("--class", dest="input_class", default="C",
                         choices=["A", "B", "C", "D"],
                         help="sweep only: workload class (default: C)")
    p_accel.add_argument("--param", default="arrays", metavar="KNOB",
                         help="sweep only: AccelConfig knob to sweep "
                              "(default: arrays)")
    p_accel.add_argument("--values", default="1,2,4,8", metavar="V1,V2,...",
                         help="sweep only: knob values (default: 1,2,4,8)")
    p_accel.add_argument("--jobs", "-j", type=int, default=None,
                         metavar="N",
                         help="worker processes for design-point fan-out")
    p_accel.add_argument("--porcelain", action="store_true",
                         help="tab-separated machine-readable output "
                              "(stable field order per action)")
    p_accel.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory (default: REPRO_CACHE_DIR "
                              "or ~/.cache/repro-power5)")
    p_accel.set_defaults(func=cmd_accel)

    p_cache = sub.add_parser(
        "cache",
        help="inspect / clear / garbage-collect the persistent "
             "simulation cache",
    )
    p_cache.add_argument("action", choices=["stats", "clear", "gc"])
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory (default: REPRO_CACHE_DIR "
                              "or ~/.cache/repro-power5)")
    p_cache.add_argument("--tmp-max-age", type=float, default=0.0,
                         metavar="SECONDS",
                         help="gc only: minimum age before an orphaned "
                              ".tmp-* file is removed (default: 0, "
                              "remove all)")
    p_cache.set_defaults(func=cmd_cache)

    p_runs = sub.add_parser(
        "runs",
        help="list / prune the durable sweep run journals",
    )
    p_runs.add_argument("action", nargs="?", choices=["list", "prune"],
                        default="list")
    p_runs.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (default: REPRO_CACHE_DIR "
                             "or ~/.cache/repro-power5)")
    p_runs.add_argument("--max-age", type=float, default=0.0,
                        metavar="SECONDS",
                        help="prune only: minimum journal age before "
                             "removal (default: 0, remove all eligible)")
    p_runs.add_argument("--include-resumable", action="store_true",
                        help="prune only: also remove interrupted "
                             "(resumable) journals")
    p_runs.add_argument("--porcelain", action="store_true",
                        help="tab-separated machine-readable listing: "
                             "run, status, done, failed, points, age, "
                             "batched points, streamed segments, "
                             "workers (older journals pad zeros)")
    p_runs.set_defaults(func=cmd_runs)

    p_resume = sub.add_parser(
        "resume",
        help="continue an interrupted journaled sweep",
    )
    p_resume.add_argument("run_id", help="run id from 'repro runs'")
    p_resume.add_argument("--jobs", "-j", type=int, default=None,
                          metavar="N",
                          help="worker processes for the remainder")
    p_resume.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="cache directory holding the journal")
    p_resume.add_argument("--keep-going", action="store_true",
                          help="finish the sweep even if points keep "
                               "failing (partial results)")
    p_resume.add_argument("--no-telemetry", action="store_true",
                          help="suppress the engine telemetry table")
    p_resume.set_defaults(func=cmd_resume)

    p_serve = sub.add_parser(
        "serve",
        help="run the sweep-service HTTP front end (submit / status / "
             "cancel / stream over local JSON)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory (default: REPRO_CACHE_DIR "
                              "or ~/.cache/repro-power5)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="drain workers per job (default: 2)")
    p_serve.add_argument("--max-queue", type=int, default=8, metavar="N",
                         help="bounded run queue depth (default: 8)")
    p_serve.add_argument("--tenant-quota", type=int, default=4,
                         metavar="N",
                         help="max queued+running jobs per tenant "
                              "(default: 4)")
    p_serve.add_argument("--lease", type=float, default=30.0,
                         metavar="SECONDS",
                         help="point lease duration (default: 30)")
    p_serve.add_argument("--token", default=None, metavar="SECRET",
                         help="require 'Authorization: Bearer SECRET' on "
                              "every route except /v1/ping (default: "
                              "REPRO_SERVICE_TOKEN if set)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every request")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a sweep to a running service",
    )
    p_submit.add_argument("apps", metavar="APP1,APP2,...",
                          help="comma-separated applications")
    p_submit.add_argument("--variants", default=None,
                          metavar="V1,V2,...",
                          help="comma-separated variants "
                               "(default: baseline)")
    p_submit.add_argument("--fxus", type=int, default=2)
    p_submit.add_argument("--btac", action="store_true")
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument("--workers", type=int, default=None,
                          metavar="N",
                          help="drain workers for this job "
                               "(default: the service's setting)")
    p_submit.add_argument("--url", default="http://127.0.0.1:8642")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job finishes, then print "
                               "its per-point digests")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          metavar="SECONDS",
                          help="--wait only: give up after this long")
    p_submit.set_defaults(func=cmd_submit)

    p_jobs = sub.add_parser(
        "jobs",
        help="list / show / cancel / stream sweep-service jobs",
    )
    p_jobs.add_argument("action", nargs="?",
                        choices=["list", "show", "cancel", "results",
                                 "stats"],
                        default="list")
    p_jobs.add_argument("job_id", nargs="?", default=None)
    p_jobs.add_argument("--url", default="http://127.0.0.1:8642")
    p_jobs.add_argument("--wait", action="store_true",
                        help="results only: follow the stream until the "
                             "job finishes")
    p_jobs.add_argument("--porcelain", action="store_true",
                        help="list only: tab-separated job, state, "
                             "tenant, points, workers")
    p_jobs.set_defaults(func=cmd_jobs)

    p_work = sub.add_parser(
        "work",
        help="drain one journaled run as a claim-based worker "
             "(several may share a run)",
    )
    p_work.add_argument("run_id", help="run id from 'repro runs'")
    p_work.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory holding the journal")
    p_work.add_argument("--worker-id", default=None, metavar="ID",
                        help="stable worker identity "
                             "(default: worker-<pid>)")
    p_work.add_argument("--lease", type=float, default=30.0,
                        metavar="SECONDS",
                        help="point lease duration (default: 30)")
    p_work.add_argument("--max-points", type=int, default=None,
                        metavar="N",
                        help="stop after taking N points")
    p_work.add_argument("--url", default=None, metavar="URL",
                        help="attach over the network to a 'repro serve' "
                             "instance instead of a shared directory "
                             "(claims via the job API, cache entries via "
                             "HTTP; --cache-dir becomes this worker's "
                             "local scratch cache)")
    p_work.add_argument("--token", default=None, metavar="SECRET",
                        help="bearer token for --url (default: "
                             "REPRO_SERVICE_TOKEN if set)")
    p_work.set_defaults(func=cmd_work)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SweepInterrupted as error:
        # Distinct status so wrappers can tell "crashed" from "stopped
        # but resumable" (the message names the resume command).
        print(f"interrupted: {error}", file=sys.stderr)
        return SweepInterrupted.EXIT_STATUS
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
