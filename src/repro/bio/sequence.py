"""Sequence records.

A :class:`Sequence` couples an identifier, an optional description, the
raw residue string, and the :class:`~repro.bio.alphabet.Alphabet` it is
drawn from. The integer encoding used by all alignment kernels is computed
once and cached.
"""

from __future__ import annotations

from repro.bio.alphabet import Alphabet, guess_alphabet
from repro.errors import AlphabetError


class Sequence:
    """An immutable biological sequence record.

    Parameters
    ----------
    seq_id:
        Identifier (the FASTA header token before the first whitespace).
    residues:
        Residue string; upper-cased on construction.
    alphabet:
        Alphabet the residues are drawn from. Guessed when omitted.
    description:
        Free-text remainder of the FASTA header.
    """

    __slots__ = ("id", "residues", "alphabet", "description", "_codes")

    def __init__(
        self,
        seq_id: str,
        residues: str,
        alphabet: Alphabet | None = None,
        description: str = "",
    ) -> None:
        if not seq_id:
            raise AlphabetError("sequence id must be non-empty")
        residues = residues.upper()
        if alphabet is None:
            alphabet = guess_alphabet(residues)
        self.id = seq_id
        self.residues = residues
        self.alphabet = alphabet
        self.description = description
        self._codes: tuple[int, ...] | None = None

    def __len__(self) -> int:
        return len(self.residues)

    def __iter__(self):
        return iter(self.residues)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Sequence(
                self.id, self.residues[index], self.alphabet, self.description
            )
        return self.residues[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return (
            self.id == other.id
            and self.residues == other.residues
            and self.alphabet == other.alphabet
        )

    def __hash__(self) -> int:
        return hash((self.id, self.residues, self.alphabet))

    def __repr__(self) -> str:
        shown = self.residues if len(self) <= 12 else self.residues[:12] + "..."
        return f"Sequence({self.id!r}, {shown!r}, len={len(self)})"

    @property
    def codes(self) -> tuple[int, ...]:
        """Integer encoding of the residues (cached)."""
        if self._codes is None:
            self._codes = tuple(self.alphabet.encode(self.residues))
        return self._codes

    def reverse(self) -> "Sequence":
        """Return a new record with the residues reversed."""
        return Sequence(
            self.id, self.residues[::-1], self.alphabet, self.description
        )

    def kmers(self, k: int):
        """Yield ``(offset, kmer_string)`` for every length-``k`` window."""
        if k < 1:
            raise AlphabetError(f"k must be >= 1, got {k}")
        for offset in range(len(self.residues) - k + 1):
            yield offset, self.residues[offset : offset + k]
