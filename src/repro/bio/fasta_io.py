"""FASTA reading and writing.

Only the classic ``>`` header format is supported — that is all BioPerf's
inputs use. Parsing is streaming and tolerant of blank lines; writing
wraps residues at a configurable width.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.bio.alphabet import Alphabet
from repro.bio.sequence import Sequence
from repro.errors import FastaParseError


def parse_fasta(
    stream: io.TextIOBase | Iterable[str],
    alphabet: Alphabet | None = None,
) -> Iterator[Sequence]:
    """Yield :class:`Sequence` records from an open text stream.

    Parameters
    ----------
    stream:
        Any iterable of lines (open file, list of strings, ...).
    alphabet:
        Forced alphabet for every record; guessed per-record when omitted.
    """
    header: str | None = None
    chunks: list[str] = []
    line_no = 0
    for line_no, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                yield _make_record(header, chunks, alphabet)
            header = line[1:].strip()
            if not header:
                raise FastaParseError(f"empty FASTA header at line {line_no}")
            chunks = []
        else:
            if header is None:
                raise FastaParseError(
                    f"sequence data before any header at line {line_no}"
                )
            chunks.append(line)
    if header is not None:
        yield _make_record(header, chunks, alphabet)


def _make_record(
    header: str, chunks: list[str], alphabet: Alphabet | None
) -> Sequence:
    residues = "".join(chunks)
    if not residues:
        raise FastaParseError(f"record {header!r} has no sequence data")
    seq_id, _, description = header.partition(" ")
    return Sequence(seq_id, residues, alphabet, description.strip())


def read_fasta(path: str | Path, alphabet: Alphabet | None = None) -> list[Sequence]:
    """Read every record of the FASTA file at ``path``."""
    with open(path, encoding="ascii") as handle:
        return list(parse_fasta(handle, alphabet))


def parse_fasta_text(text: str, alphabet: Alphabet | None = None) -> list[Sequence]:
    """Parse FASTA records from an in-memory string."""
    return list(parse_fasta(io.StringIO(text), alphabet))


def format_fasta(records: Iterable[Sequence], width: int = 60) -> str:
    """Render ``records`` as FASTA text with lines wrapped at ``width``."""
    if width < 1:
        raise FastaParseError(f"wrap width must be >= 1, got {width}")
    parts: list[str] = []
    for record in records:
        header = record.id
        if record.description:
            header = f"{header} {record.description}"
        parts.append(f">{header}")
        residues = record.residues
        for start in range(0, len(residues), width):
            parts.append(residues[start : start + width])
    return "\n".join(parts) + "\n"


def write_fasta(
    path: str | Path, records: Iterable[Sequence], width: int = 60
) -> None:
    """Write ``records`` to ``path`` in FASTA format."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(format_fasta(records, width))
