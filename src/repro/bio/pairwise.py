"""Affine-gap pairwise alignment (Gotoh's algorithm).

Implements the two dynamic-programming kernels the paper identifies as the
hot spots of the BioPerf sequence codes:

* :func:`smith_waterman` — local alignment, the ``dropgsw`` kernel of
  Fasta's ``ssearch``;
* :func:`needleman_wunsch` — global alignment, the ``forward_pass``
  kernel of Clustalw's pairwise stage.

Both follow the recurrence of the paper's pseudo-code (Algorithm in
§III), with the standard Gotoh fix that ``F`` reads row ``i-1``:

.. code-block:: text

    G(i,j) = V(i-1,j-1) + W_ij
    E(i,j) = max(E(i,j-1), V(i,j-1) - Wg) - Ws
    F(i,j) = max(F(i-1,j), V(i-1,j) - Wg) - Ws
    V(i,j) = max(E(i,j), F(i,j), G(i,j)[, 0])

The ``max`` selections here are exactly the value-dependent conditional
branches whose mispredictions the paper attacks with ``max``/``isel``
instructions; the mini-ISA kernels in :mod:`repro.kernels` implement the
same recurrence and are cross-checked against these references.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.scoring import GapPenalties, SubstitutionMatrix
from repro.bio.sequence import Sequence
from repro.errors import AlignmentError

#: Sentinel "minus infinity" that survives repeated additions of gap costs.
NEG_INF = -(1 << 40)

_DIAG, _LEFT, _UP = 0, 1, 2


@dataclass(frozen=True)
class Alignment:
    """The result of a pairwise alignment.

    ``aligned_a``/``aligned_b`` are equal-length strings with ``-`` for
    gaps; ``start_a``/``start_b`` are 0-based offsets of the first aligned
    residue in each input (always 0 for global alignments).
    """

    score: int
    aligned_a: str
    aligned_b: str
    start_a: int = 0
    start_b: int = 0

    def __post_init__(self) -> None:
        if len(self.aligned_a) != len(self.aligned_b):
            raise AlignmentError("aligned strings must have equal length")

    @property
    def end_a(self) -> int:
        """End offset (exclusive) of the aligned region in sequence A."""
        return self.start_a + len(self.aligned_a.replace("-", ""))

    @property
    def end_b(self) -> int:
        """End offset (exclusive) of the aligned region in sequence B."""
        return self.start_b + len(self.aligned_b.replace("-", ""))

    @property
    def length(self) -> int:
        """Number of alignment columns."""
        return len(self.aligned_a)

    @property
    def identities(self) -> int:
        """Number of columns with identical residues."""
        return sum(
            1
            for x, y in zip(self.aligned_a, self.aligned_b)
            if x == y and x != "-"
        )

    @property
    def identity(self) -> float:
        """Fraction of identical columns (0.0 for an empty alignment)."""
        if not self.aligned_a:
            return 0.0
        return self.identities / self.length

    def pretty(self, width: int = 60) -> str:
        """Human-readable three-line rendering wrapped at ``width``."""
        lines: list[str] = []
        for start in range(0, self.length, width):
            top = self.aligned_a[start : start + width]
            bottom = self.aligned_b[start : start + width]
            middle = "".join(
                "|" if x == y and x != "-" else " " for x, y in zip(top, bottom)
            )
            lines.extend((top, middle, bottom, ""))
        return "\n".join(lines).rstrip("\n")


def _check_inputs(
    seq_a: Sequence, seq_b: Sequence, matrix: SubstitutionMatrix
) -> None:
    if seq_a.alphabet != matrix.alphabet or seq_b.alphabet != matrix.alphabet:
        raise AlignmentError(
            f"sequences ({seq_a.alphabet.name}, {seq_b.alphabet.name}) do not "
            f"match matrix alphabet {matrix.alphabet.name}"
        )
    if len(seq_a) == 0 or len(seq_b) == 0:
        raise AlignmentError("cannot align empty sequences")


def smith_waterman_score(
    seq_a: Sequence,
    seq_b: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(),
) -> int:
    """Best local alignment score, without traceback (fast path).

    This is the score-only form of the kernel that dominates ``ssearch``
    runtime; the mini-ISA Smith–Waterman kernel is validated against it.
    """
    _check_inputs(seq_a, seq_b, matrix)
    codes_a, codes_b = seq_a.codes, seq_b.codes
    n = len(codes_b)
    open_cost = gaps.open_ + gaps.extend
    extend_cost = gaps.extend
    row_v = [0] * (n + 1)
    row_f = [NEG_INF] * (n + 1)
    best = 0
    scores = matrix.scores
    for code_a in codes_a:
        matrix_row = scores[code_a]
        diag = 0
        e = NEG_INF
        v_left = 0
        for j in range(1, n + 1):
            e = max(e - extend_cost, v_left - open_cost)
            f = max(row_f[j] - extend_cost, row_v[j] - open_cost)
            g = diag + matrix_row[codes_b[j - 1]]
            v = max(e, f, g, 0)
            diag = row_v[j]
            row_v[j] = v
            row_f[j] = f
            v_left = v
            if v > best:
                best = v
    return int(best)


def smith_waterman(
    seq_a: Sequence,
    seq_b: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(),
) -> Alignment:
    """Best local alignment with full traceback."""
    _check_inputs(seq_a, seq_b, matrix)
    codes_a, codes_b = seq_a.codes, seq_b.codes
    m, n = len(codes_a), len(codes_b)
    open_cost = gaps.open_ + gaps.extend
    extend_cost = gaps.extend

    v = [[0] * (n + 1) for _ in range(m + 1)]
    e = [[NEG_INF] * (n + 1) for _ in range(m + 1)]
    f = [[NEG_INF] * (n + 1) for _ in range(m + 1)]
    best, best_i, best_j = 0, 0, 0
    scores = matrix.scores
    for i in range(1, m + 1):
        matrix_row = scores[codes_a[i - 1]]
        row_v, prev_v = v[i], v[i - 1]
        row_e, row_f, prev_f = e[i], f[i], f[i - 1]
        for j in range(1, n + 1):
            row_e[j] = max(row_e[j - 1] - extend_cost, row_v[j - 1] - open_cost)
            row_f[j] = max(prev_f[j] - extend_cost, prev_v[j] - open_cost)
            g = prev_v[j - 1] + matrix_row[codes_b[j - 1]]
            value = max(row_e[j], row_f[j], g, 0)
            row_v[j] = value
            if value > best:
                best, best_i, best_j = value, i, j
    aligned_a, aligned_b, start_i, start_j = _traceback_local(
        codes_a, codes_b, seq_a.residues, seq_b.residues,
        v, e, f, best_i, best_j, matrix, open_cost, extend_cost,
    )
    return Alignment(int(best), aligned_a, aligned_b, start_i, start_j)


def _traceback_local(
    codes_a, codes_b, res_a, res_b, v, e, f,
    i, j, matrix, open_cost, extend_cost,
):
    """Walk back from the best local cell until a zero cell is reached."""
    out_a: list[str] = []
    out_b: list[str] = []
    state = "v"
    while i > 0 and j > 0:
        if state == "v":
            value = v[i][j]
            if value == 0:
                break
            if value == e[i][j]:
                state = "e"
            elif value == f[i][j]:
                state = "f"
            else:
                out_a.append(res_a[i - 1])
                out_b.append(res_b[j - 1])
                i -= 1
                j -= 1
        elif state == "e":
            out_a.append("-")
            out_b.append(res_b[j - 1])
            if e[i][j] != e[i][j - 1] - extend_cost:
                state = "v"
            j -= 1
        else:
            out_a.append(res_a[i - 1])
            out_b.append("-")
            if f[i][j] != f[i - 1][j] - extend_cost:
                state = "v"
            i -= 1
    return "".join(reversed(out_a)), "".join(reversed(out_b)), i, j


def needleman_wunsch_score(
    seq_a: Sequence,
    seq_b: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(),
) -> int:
    """Global alignment score without traceback.

    This is the ``forward_pass`` kernel of Clustalw's pairwise stage.
    """
    _check_inputs(seq_a, seq_b, matrix)
    codes_a, codes_b = seq_a.codes, seq_b.codes
    n = len(codes_b)
    open_cost = gaps.open_ + gaps.extend
    extend_cost = gaps.extend
    row_v = [0] + [-gaps.cost(j) for j in range(1, n + 1)]
    row_f = [NEG_INF] * (n + 1)
    scores = matrix.scores
    for i, code_a in enumerate(codes_a, start=1):
        matrix_row = scores[code_a]
        diag = row_v[0]
        row_v[0] = -gaps.cost(i)
        e = NEG_INF
        v_left = row_v[0]
        for j in range(1, n + 1):
            e = max(e - extend_cost, v_left - open_cost)
            f = max(row_f[j] - extend_cost, row_v[j] - open_cost)
            g = diag + matrix_row[codes_b[j - 1]]
            value = max(e, f, g)
            diag = row_v[j]
            row_v[j] = value
            row_f[j] = f
            v_left = value
    return int(row_v[n])


def needleman_wunsch(
    seq_a: Sequence,
    seq_b: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(),
) -> Alignment:
    """Global alignment with full traceback."""
    _check_inputs(seq_a, seq_b, matrix)
    codes_a, codes_b = seq_a.codes, seq_b.codes
    m, n = len(codes_a), len(codes_b)
    open_cost = gaps.open_ + gaps.extend
    extend_cost = gaps.extend

    v = [[NEG_INF] * (n + 1) for _ in range(m + 1)]
    e = [[NEG_INF] * (n + 1) for _ in range(m + 1)]
    f = [[NEG_INF] * (n + 1) for _ in range(m + 1)]
    v[0][0] = 0
    for j in range(1, n + 1):
        e[0][j] = -gaps.cost(j)
        v[0][j] = e[0][j]
    for i in range(1, m + 1):
        f[i][0] = -gaps.cost(i)
        v[i][0] = f[i][0]
    scores = matrix.scores
    for i in range(1, m + 1):
        matrix_row = scores[codes_a[i - 1]]
        row_v, prev_v = v[i], v[i - 1]
        row_e, row_f, prev_f = e[i], f[i], f[i - 1]
        for j in range(1, n + 1):
            row_e[j] = max(row_e[j - 1] - extend_cost, row_v[j - 1] - open_cost)
            row_f[j] = max(prev_f[j] - extend_cost, prev_v[j] - open_cost)
            g = prev_v[j - 1] + matrix_row[codes_b[j - 1]]
            row_v[j] = max(row_e[j], row_f[j], g)

    out_a: list[str] = []
    out_b: list[str] = []
    i, j, state = m, n, "v"
    res_a, res_b = seq_a.residues, seq_b.residues
    while i > 0 or j > 0:
        if state == "v":
            if j > 0 and v[i][j] == e[i][j]:
                state = "e"
            elif i > 0 and v[i][j] == f[i][j]:
                state = "f"
            else:
                out_a.append(res_a[i - 1])
                out_b.append(res_b[j - 1])
                i -= 1
                j -= 1
        elif state == "e":
            out_a.append("-")
            out_b.append(res_b[j - 1])
            if j == 1 or e[i][j] != e[i][j - 1] - extend_cost:
                state = "v"
            j -= 1
        else:
            out_a.append(res_a[i - 1])
            out_b.append("-")
            if i == 1 or f[i][j] != f[i - 1][j] - extend_cost:
                state = "v"
            i -= 1
    return Alignment(
        int(v[m][n]), "".join(reversed(out_a)), "".join(reversed(out_b))
    )
