"""Hmmer-style database scans built on :mod:`repro.bio.hmm`.

``hmmpfam`` aligns one query sequence against a database of profile HMMs
(the binary the paper profiles); ``hmmsearch`` is the converse, one model
against a sequence database.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.hmm import SCALE, ProfileHmm, viterbi_score
from repro.bio.sequence import Sequence
from repro.errors import HmmError


@dataclass(frozen=True)
class HmmHit:
    """One model/sequence pair with its Viterbi score.

    ``bits`` converts the integer fixed-point score to bits for display.
    """

    model_name: str
    sequence_id: str
    score: int

    @property
    def bits(self) -> float:
        import math

        return self.score / SCALE / math.log(2.0)


def hmmpfam(
    query: Sequence,
    models: list[ProfileHmm],
    min_score: int | None = None,
) -> list[HmmHit]:
    """Score ``query`` against every model, best hits first.

    ``min_score`` (integer fixed-point units) filters weak hits; when
    omitted every model is reported. This mirrors Hmmer's ``hmmpfam``
    binary, whose runtime is dominated by the ``P7Viterbi`` kernel each
    call performs.
    """
    if not models:
        raise HmmError("model database is empty")
    hits = [
        HmmHit(model.name, query.id, viterbi_score(model, query))
        for model in models
    ]
    if min_score is not None:
        hits = [hit for hit in hits if hit.score >= min_score]
    hits.sort(key=lambda hit: -hit.score)
    return hits


def hmmsearch(
    model: ProfileHmm,
    database: list[Sequence],
    min_score: int | None = None,
) -> list[HmmHit]:
    """Score every database sequence against one model, best first."""
    if not database:
        raise HmmError("sequence database is empty")
    hits = [
        HmmHit(model.name, seq.id, viterbi_score(model, seq))
        for seq in database
    ]
    if min_score is not None:
        hits = [hit for hit in hits if hit.score >= min_score]
    hits.sort(key=lambda hit: -hit.score)
    return hits
