"""Phylip-style phylogeny reconstruction (the paper's §VIII extension).

The paper's conclusions "can be extended to ... the phylogeny
reconstruction application Phylip"; this module provides that
workload: Fitch small parsimony over a tree (the dynamic-programming
kernel — per site, per node, set intersections with a conditional
cost increment, the same value-dependent-branch structure as the
alignment kernels), parsimony-based tree search by nearest-neighbour
interchange, and a convenience pipeline from raw sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.guidetree import TreeNode, upgma
from repro.bio.msa import clustalw, pairwise_distance_matrix
from repro.bio.sequence import Sequence
from repro.errors import AlignmentError


def _site_masks(column: str, alphabet_symbols: str) -> list[int]:
    """Bitmask per row of one alignment column (gap = full ambiguity)."""
    masks = []
    for symbol in column:
        if symbol == "-":
            masks.append((1 << len(alphabet_symbols)) - 1)
        else:
            masks.append(1 << alphabet_symbols.index(symbol))
    return masks


def fitch_site_score(tree: TreeNode, masks: list[int]) -> int:
    """Fitch parsimony cost of one site under ``tree``.

    Post-order pass: a node's state set is the intersection of its
    children's sets when non-empty, else their union at the cost of one
    mutation — the ``if (intersection == 0)`` conditional that makes
    this kernel branch-heavy.
    """
    cost = 0
    states: dict[int, int] = {}
    for node in tree.postorder():
        if node.is_leaf:
            assert node.index is not None
            states[id(node)] = masks[node.index]
            continue
        left = states[id(node.left)]
        right = states[id(node.right)]
        intersection = left & right
        if intersection:
            states[id(node)] = intersection
        else:
            states[id(node)] = left | right
            cost += 1
    return cost


def fitch_score(tree: TreeNode, rows: list[str], symbols: str) -> int:
    """Total Fitch parsimony cost of an alignment under ``tree``."""
    if not rows:
        raise AlignmentError("need aligned rows to score")
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise AlignmentError("aligned rows must have equal length")
    leaf_count = max(tree.leaves) + 1
    if leaf_count > len(rows):
        raise AlignmentError(
            f"tree references {leaf_count} rows, alignment has {len(rows)}"
        )
    total = 0
    for col in range(width):
        column = "".join(row[col] for row in rows)
        total += fitch_site_score(tree, _site_masks(column, symbols))
    return total


def _internal_edges(tree: TreeNode) -> list[TreeNode]:
    """Internal nodes whose both children are internal-or-leaf pairs
    suitable for NNI (the node's two children plus a sibling swap)."""
    return [
        node
        for node in tree.postorder()
        if not node.is_leaf
        and node.left is not None
        and node.right is not None
        and not (node.left.is_leaf and node.right.is_leaf)
    ]


def _clone(node: TreeNode) -> TreeNode:
    if node.is_leaf:
        return TreeNode(index=node.index)
    left = _clone(node.left)
    right = _clone(node.right)
    return TreeNode(
        left=left, right=right, height=node.height,
        size=left.size + right.size, leaves=left.leaves + right.leaves,
    )


def _refresh(node: TreeNode) -> None:
    """Recompute leaves/size bottom-up after a rearrangement."""
    if node.is_leaf:
        node.leaves = (node.index,)
        node.size = 1
        return
    _refresh(node.left)
    _refresh(node.right)
    node.leaves = node.left.leaves + node.right.leaves
    node.size = node.left.size + node.right.size


def nni_neighbours(tree: TreeNode) -> list[TreeNode]:
    """All trees one nearest-neighbour interchange away from ``tree``."""
    neighbours = []
    nodes = [n for n in tree.postorder() if not n.is_leaf]
    for position, node in enumerate(nodes):
        for child_name, sibling_name in (("left", "right"), ("right", "left")):
            child = getattr(node, child_name)
            if child.is_leaf:
                continue
            # Swap one grandchild with the child's sibling.
            for grandchild_name in ("left", "right"):
                clone = _clone(tree)
                clone_nodes = [
                    n for n in clone.postorder() if not n.is_leaf
                ]
                clone_node = clone_nodes[position]
                clone_child = getattr(clone_node, child_name)
                sibling = getattr(clone_node, sibling_name)
                grandchild = getattr(clone_child, grandchild_name)
                setattr(clone_child, grandchild_name, sibling)
                setattr(clone_node, sibling_name, grandchild)
                _refresh(clone)
                neighbours.append(clone)
        # Cross swaps around this node's own edge: when both children
        # are internal, exchange a grandchild of each (the rearrangement
        # that turns ((0,2),(1,3)) into ((0,1),(2,3)) in one move).
        if not node.left.is_leaf and not node.right.is_leaf:
            for left_gc in ("left", "right"):
                for right_gc in ("left", "right"):
                    clone = _clone(tree)
                    clone_nodes = [
                        n for n in clone.postorder() if not n.is_leaf
                    ]
                    clone_node = clone_nodes[position]
                    a = getattr(clone_node.left, left_gc)
                    b = getattr(clone_node.right, right_gc)
                    setattr(clone_node.left, left_gc, b)
                    setattr(clone_node.right, right_gc, a)
                    _refresh(clone)
                    neighbours.append(clone)
    return neighbours


@dataclass(frozen=True)
class ParsimonyResult:
    """Outcome of a parsimony tree search."""

    tree: TreeNode
    score: int
    evaluated: int  # trees scored during the search


def parsimony_search(
    rows: list[str],
    symbols: str,
    start: TreeNode,
    max_rounds: int = 10,
) -> ParsimonyResult:
    """Hill-climb over NNI moves from ``start`` (Phylip-style search)."""
    best_tree = _clone(start)
    _refresh(best_tree)
    best_score = fitch_score(best_tree, rows, symbols)
    evaluated = 1
    for _ in range(max_rounds):
        improved = False
        for candidate in nni_neighbours(best_tree):
            score = fitch_score(candidate, rows, symbols)
            evaluated += 1
            if score < best_score:
                best_tree, best_score = candidate, score
                improved = True
        if not improved:
            break
    return ParsimonyResult(best_tree, best_score, evaluated)


def phylip(
    sequences: list[Sequence],
    max_rounds: int = 10,
) -> ParsimonyResult:
    """Full pipeline: align, build a starting tree, search by parsimony."""
    if len(sequences) < 3:
        raise AlignmentError("need at least three sequences for a tree")
    msa = clustalw(sequences)
    distances = pairwise_distance_matrix(sequences, method="ktuple")
    start = upgma(np.asarray(distances))
    symbols = sequences[0].alphabet.symbols
    return parsimony_search(
        list(msa.rows), symbols, start, max_rounds=max_rounds
    )
