"""Bioinformatics substrate: the four BioPerf sequence-analysis apps.

This package reimplements, in pure Python, every algorithm the paper
characterises — Blast's seeded heuristic search, Fasta's ktup heuristic
and exhaustive ssearch, Clustalw's progressive multiple alignment, and
Hmmer's profile-HMM scoring — plus the shared machinery (alphabets,
FASTA I/O, substitution matrices, pairwise DP, Karlin–Altschul
statistics, synthetic workload generation).
"""

from repro.bio.alphabet import DNA, PROTEIN, Alphabet, guess_alphabet
from repro.bio.banded import ExtensionResult, gapped_extension, xdrop_extend
from repro.bio.blast import (
    BlastDatabase,
    BlastHit,
    BlastParameters,
    BlastSearch,
    Hsp,
    blastn,
    blastn_parameters,
    blastp,
)
from repro.bio.fasta_io import (
    format_fasta,
    parse_fasta,
    parse_fasta_text,
    read_fasta,
    write_fasta,
)
from repro.bio.fastatool import FastaHit, SsearchHit, fasta_search, ssearch
from repro.bio.genefind import (
    GenePrediction,
    InterpolatedMarkovModel,
    Orf,
    find_orfs,
    glimmer,
    reverse_complement,
)
from repro.bio.phylo import (
    ParsimonyResult,
    fitch_score,
    parsimony_search,
    phylip,
)
from repro.bio.guidetree import TreeNode, neighbour_joining, upgma
from repro.bio.hmm import (
    ProfileHmm,
    build_hmm,
    forward_score,
    viterbi_score,
)
from repro.bio.hmmer import HmmHit, hmmpfam, hmmsearch
from repro.bio.kmer import KmerIndex, neighbourhood, shared_kmer_count
from repro.bio.msa import (
    Msa,
    clustalw,
    iterative_refine,
    pairwise_distance_matrix,
    sum_of_pairs_score,
)
from repro.bio.pairwise import (
    Alignment,
    needleman_wunsch,
    needleman_wunsch_score,
    smith_waterman,
    smith_waterman_score,
)
from repro.bio.scoring import (
    BLOSUM62,
    PAM250,
    GapPenalties,
    SubstitutionMatrix,
    dna_matrix,
)
from repro.bio.sequence import Sequence
from repro.bio.statistics import KarlinAltschulParams, karlin_altschul_params
from repro.bio.treedist import (
    bipartitions,
    normalised_robinson_foulds,
    robinson_foulds,
)

__all__ = [
    "DNA",
    "PROTEIN",
    "Alphabet",
    "guess_alphabet",
    "ExtensionResult",
    "gapped_extension",
    "xdrop_extend",
    "BlastDatabase",
    "BlastHit",
    "BlastParameters",
    "BlastSearch",
    "Hsp",
    "blastn",
    "blastn_parameters",
    "blastp",
    "format_fasta",
    "parse_fasta",
    "parse_fasta_text",
    "read_fasta",
    "write_fasta",
    "FastaHit",
    "SsearchHit",
    "fasta_search",
    "ssearch",
    "GenePrediction",
    "InterpolatedMarkovModel",
    "Orf",
    "find_orfs",
    "glimmer",
    "reverse_complement",
    "ParsimonyResult",
    "fitch_score",
    "parsimony_search",
    "phylip",
    "TreeNode",
    "neighbour_joining",
    "upgma",
    "ProfileHmm",
    "build_hmm",
    "forward_score",
    "viterbi_score",
    "HmmHit",
    "hmmpfam",
    "hmmsearch",
    "KmerIndex",
    "neighbourhood",
    "shared_kmer_count",
    "Msa",
    "clustalw",
    "iterative_refine",
    "pairwise_distance_matrix",
    "sum_of_pairs_score",
    "Alignment",
    "needleman_wunsch",
    "needleman_wunsch_score",
    "smith_waterman",
    "smith_waterman_score",
    "BLOSUM62",
    "PAM250",
    "GapPenalties",
    "SubstitutionMatrix",
    "dna_matrix",
    "Sequence",
    "KarlinAltschulParams",
    "karlin_altschul_params",
    "bipartitions",
    "normalised_robinson_foulds",
    "robinson_foulds",
]
