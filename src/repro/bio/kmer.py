"""K-mer indexing and neighbourhood word generation.

Blast-style seeding needs two pieces of machinery:

* a :class:`KmerIndex` over the database sequences, mapping each word to
  its ``(sequence index, offset)`` occurrences;
* :func:`neighbourhood` — for protein search, the set of words scoring at
  least ``threshold`` against a query word under a substitution matrix
  (the "T parameter" of blastp).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

import numpy as np

from repro.bio.alphabet import Alphabet
from repro.bio.scoring import SubstitutionMatrix
from repro.bio.sequence import Sequence
from repro.errors import AlignmentError


class KmerIndex:
    """Exact-word inverted index over a sequence database.

    Parameters
    ----------
    sequences:
        Database records; their order defines the sequence indices
        reported by :meth:`lookup`.
    k:
        Word length (blastp uses 3, blastn 11; Fasta's ``ktup`` is 1-2
        for protein and 4-6 for DNA).
    """

    def __init__(self, sequences: Iterable[Sequence], k: int) -> None:
        if k < 1:
            raise AlignmentError(f"word length k must be >= 1, got {k}")
        self.k = k
        self.sequences = list(sequences)
        self._table: dict[str, list[tuple[int, int]]] = defaultdict(list)
        for seq_index, record in enumerate(self.sequences):
            for offset, word in record.kmers(k):
                self._table[word].append((seq_index, offset))

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, word: str) -> bool:
        return word in self._table

    def lookup(self, word: str) -> list[tuple[int, int]]:
        """All ``(sequence index, offset)`` occurrences of ``word``."""
        if len(word) != self.k:
            raise AlignmentError(
                f"word {word!r} has length {len(word)}, index k={self.k}"
            )
        return self._table.get(word, [])

    def words(self) -> Iterator[str]:
        """Iterate over the distinct words present in the database."""
        return iter(self._table)


def _word_score(
    word_a: str, word_b: str, matrix: SubstitutionMatrix
) -> int:
    return sum(
        matrix.score_symbols(x, y) for x, y in zip(word_a, word_b)
    )


def neighbourhood(
    word: str,
    matrix: SubstitutionMatrix,
    threshold: int,
    alphabet: Alphabet | None = None,
) -> list[str]:
    """All words scoring >= ``threshold`` against ``word`` under ``matrix``.

    This is blastp's neighbourhood-word expansion. The search walks a
    per-position branch-and-bound: a partial word is abandoned as soon as
    even best-case completion cannot reach the threshold.
    """
    if alphabet is None:
        alphabet = matrix.alphabet
    k = len(word)
    if k == 0:
        raise AlignmentError("cannot expand an empty word")
    word_codes = [alphabet.code(symbol) for symbol in word]
    # residues to try at each position, excluding wildcard/stop which
    # never help seeding
    candidate_codes = [
        code
        for code in range(len(alphabet))
        if alphabet.symbol(code) not in (alphabet.wildcard, "*")
    ]
    # best achievable score for the remaining suffix starting at position i
    suffix_best = [0] * (k + 1)
    for i in range(k - 1, -1, -1):
        best_here = max(
            matrix.score(word_codes[i], code) for code in candidate_codes
        )
        suffix_best[i] = suffix_best[i + 1] + best_here

    results: list[str] = []
    chosen: list[int] = []

    def expand(position: int, score_so_far: int) -> None:
        if position == k:
            results.append(alphabet.decode(chosen))
            return
        for code in candidate_codes:
            score = score_so_far + matrix.score(word_codes[position], code)
            if score + suffix_best[position + 1] < threshold:
                continue
            chosen.append(code)
            expand(position + 1, score)
            chosen.pop()

    expand(0, 0)
    return results


def diagonal_hits(
    query: Sequence, index: KmerIndex, words_per_offset: dict[int, list[str]]
) -> dict[tuple[int, int], list[tuple[int, int]]]:
    """Group seed hits by ``(sequence index, diagonal)``.

    ``words_per_offset`` maps each query offset to the words to look up
    there (for blastp, the neighbourhood of the query word at that
    offset). The diagonal of a hit pairing query offset ``q`` with subject
    offset ``s`` is ``s - q``. Returns, per (sequence, diagonal), the list
    of ``(query offset, subject offset)`` hits sorted by query offset.
    """
    grouped: dict[tuple[int, int], list[tuple[int, int]]] = defaultdict(list)
    for q_offset, words in words_per_offset.items():
        for word in words:
            for seq_index, s_offset in index.lookup(word):
                key = (seq_index, s_offset - q_offset)
                grouped[key].append((q_offset, s_offset))
    for hits in grouped.values():
        hits.sort()
    return grouped


def shared_kmer_count(seq_a: Sequence, seq_b: Sequence, k: int) -> int:
    """Number of k-mer occurrences shared between two sequences.

    Used by Clustalw's quick (k-tuple) distance measure. Counts, over the
    distinct words of ``seq_a``, the matched occurrences in ``seq_b``
    (capped at the occurrence count in ``seq_a`` per word).
    """
    counts_a: dict[str, int] = defaultdict(int)
    for _, word in seq_a.kmers(k):
        counts_a[word] += 1
    counts_b: dict[str, int] = defaultdict(int)
    for _, word in seq_b.kmers(k):
        counts_b[word] += 1
    return sum(
        min(count, counts_b.get(word, 0)) for word, count in counts_a.items()
    )


def kmer_profile(sequences: Iterable[Sequence], k: int) -> np.ndarray:
    """Dense per-sequence k-mer count matrix (for workload statistics)."""
    sequences = list(sequences)
    if not sequences:
        raise AlignmentError("need at least one sequence")
    vocabulary: dict[str, int] = {}
    rows = []
    for record in sequences:
        counts: dict[int, int] = defaultdict(int)
        for _, word in record.kmers(k):
            column = vocabulary.setdefault(word, len(vocabulary))
            counts[column] += 1
        rows.append(counts)
    profile = np.zeros((len(sequences), len(vocabulary)), dtype=np.int64)
    for row_index, counts in enumerate(rows):
        for column, count in counts.items():
            profile[row_index, column] = count
    return profile
