"""Tree-comparison metrics.

Phylogeny methods (UPGMA, neighbour joining, parsimony search) produce
competing topologies for the same taxa; the standard way to compare
them is the Robinson–Foulds distance — the number of bipartitions
(splits) present in one tree but not the other.
"""

from __future__ import annotations

from repro.bio.guidetree import TreeNode
from repro.errors import AlignmentError


def bipartitions(tree: TreeNode) -> set[frozenset[int]]:
    """Non-trivial splits of ``tree``.

    Each internal edge splits the taxa in two; the split is recorded
    canonically as the side containing the smallest taxon, so a
    bipartition and its complement map to the same frozenset. Trivial
    splits (single leaves, the full set) are excluded.
    """
    taxa = frozenset(tree.leaves)
    if len(taxa) < 4:
        return set()
    anchor = min(taxa)
    splits: set[frozenset[int]] = set()
    for node in tree.postorder():
        if node.is_leaf or node is tree:
            continue
        side = frozenset(node.leaves)
        other = taxa - side
        if len(side) < 2 or len(other) < 2:
            continue
        splits.add(side if anchor in side else other)
    return splits


def robinson_foulds(first: TreeNode, second: TreeNode) -> int:
    """Symmetric-difference (Robinson–Foulds) distance."""
    if frozenset(first.leaves) != frozenset(second.leaves):
        raise AlignmentError("trees are over different taxa")
    first_splits = bipartitions(first)
    second_splits = bipartitions(second)
    return len(first_splits ^ second_splits)


def normalised_robinson_foulds(first: TreeNode, second: TreeNode) -> float:
    """RF distance scaled to [0, 1] by the maximum possible distance."""
    distance = robinson_foulds(first, second)
    n = len(first.leaves)
    maximum = 2 * max(0, n - 3)
    if maximum == 0:
        return 0.0
    return distance / maximum
