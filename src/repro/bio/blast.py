"""A blastp-style heuristic protein search pipeline.

Reimplements the structure of NCBI blastp as the paper characterises it:

1. **Seeding** — every query word of length ``word_size`` is expanded
   into its scoring neighbourhood (threshold ``T``) and looked up in a
   :class:`~repro.bio.kmer.KmerIndex` over the database.
2. **Two-hit trigger** — two non-overlapping hits on the same diagonal
   within ``two_hit_window`` trigger an ungapped extension.
3. **Ungapped X-drop extension** along the diagonal.
4. **Gapped extension** (the ``SEMI_G_ALIGN_EX`` kernel) around the best
   seed pair, for HSPs whose ungapped score reaches ``gap_trigger``.
5. **Scoring** — raw scores become bit scores / E-values via
   Karlin–Altschul statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bio.banded import ExtensionResult, gapped_extension
from repro.bio.kmer import KmerIndex, neighbourhood
from repro.bio.scoring import BLOSUM62, GapPenalties, SubstitutionMatrix
from repro.bio.sequence import Sequence
from repro.bio.statistics import KarlinAltschulParams, karlin_altschul_params
from repro.errors import AlignmentError


@dataclass(frozen=True)
class BlastParameters:
    """Tunable knobs of the blastp pipeline (NCBI-like defaults)."""

    word_size: int = 3
    threshold: int = 11
    two_hit_window: int = 40
    x_drop_ungapped: int = 7
    x_drop_gapped: int = 25
    gap_trigger: int = 22
    max_evalue: float = 10.0
    gaps: GapPenalties = field(default_factory=lambda: GapPenalties(11, 1))
    #: DNA mode (blastn): seed on exact words only — with an 11-mer
    #: word the scoring neighbourhood would be astronomically large and
    #: is unnecessary, since DNA matches are near-exact at seed length.
    exact_seeds: bool = False
    #: Require two non-overlapping diagonal hits before extending
    #: (NCBI's two-hit heuristic). Disabling it extends on every hit —
    #: more sensitive, far more extension work.
    two_hit: bool = True

    def __post_init__(self) -> None:
        if self.word_size < 1:
            raise AlignmentError("word_size must be >= 1")
        if self.two_hit_window <= self.word_size:
            raise AlignmentError("two_hit_window must exceed word_size")


@dataclass(frozen=True)
class Hsp:
    """A high-scoring segment pair against one database sequence."""

    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    score: int
    bit_score: float
    evalue: float


@dataclass(frozen=True)
class BlastHit:
    """All retained HSPs for one database sequence, best first."""

    subject: Sequence
    hsps: tuple[Hsp, ...]

    @property
    def best(self) -> Hsp:
        return self.hsps[0]


class BlastDatabase:
    """A searchable protein database (index + statistics)."""

    def __init__(
        self,
        sequences: list[Sequence],
        matrix: SubstitutionMatrix = BLOSUM62,
        params: BlastParameters | None = None,
    ) -> None:
        if not sequences:
            raise AlignmentError("database must contain sequences")
        self.params = params or BlastParameters()
        self.matrix = matrix
        self.sequences = sequences
        self.index = KmerIndex(sequences, self.params.word_size)
        self.total_length = sum(len(record) for record in sequences)
        self.stats: KarlinAltschulParams = karlin_altschul_params(matrix)

    def __len__(self) -> int:
        return len(self.sequences)


def _ungapped_extend(
    codes_q: tuple[int, ...],
    codes_s: tuple[int, ...],
    q_offset: int,
    s_offset: int,
    word_size: int,
    matrix: SubstitutionMatrix,
    x_drop: int,
) -> tuple[int, int, int]:
    """Extend a word hit along its diagonal without gaps.

    Returns ``(score, query_start, query_end)`` of the maximal-scoring
    run containing the seed word, X-drop pruned in both directions.
    """
    scores = matrix.scores
    score = sum(
        int(scores[codes_q[q_offset + k], codes_s[s_offset + k]])
        for k in range(word_size)
    )
    best = score
    # Rightward.
    q, s = q_offset + word_size, s_offset + word_size
    running = score
    best_right = q_offset + word_size
    while q < len(codes_q) and s < len(codes_s):
        running += int(scores[codes_q[q], codes_s[s]])
        q += 1
        s += 1
        if running > best:
            best = running
            best_right = q
        elif running < best - x_drop:
            break
    # Leftward from the seed start.
    q, s = q_offset - 1, s_offset - 1
    running = best
    best_score = best
    best_left = q_offset
    while q >= 0 and s >= 0:
        running += int(scores[codes_q[q], codes_s[s]])
        if running > best_score:
            best_score = running
            best_left = q
        elif running < best_score - x_drop:
            break
        q -= 1
        s -= 1
    return best_score, best_left, best_right


def _overlaps(hsp: Hsp, other: Hsp) -> bool:
    return not (
        hsp.query_end <= other.query_start
        or other.query_end <= hsp.query_start
        or hsp.subject_end <= other.subject_start
        or other.subject_end <= hsp.subject_start
    )


class BlastSearch:
    """One query searched against a :class:`BlastDatabase`.

    Instantiating the class does no work; call :meth:`run`. The
    intermediate products (seed hits, triggered diagonals, ungapped and
    gapped extension counts) are kept as attributes because the workload
    characterisation uses them as work-unit counts.
    """

    def __init__(self, query: Sequence, database: BlastDatabase) -> None:
        if query.alphabet != database.matrix.alphabet:
            raise AlignmentError("query alphabet does not match database")
        self.query = query
        self.database = database
        self.seed_hits = 0
        self.two_hit_triggers = 0
        self.ungapped_extensions = 0
        self.gapped_extensions = 0

    def _seed_words(self) -> dict[int, list[str]]:
        params = self.database.params
        words: dict[int, list[str]] = {}
        for offset, word in self.query.kmers(params.word_size):
            if params.exact_seeds:
                words[offset] = [word]
            else:
                words[offset] = neighbourhood(
                    word, self.database.matrix, params.threshold
                )
        return words

    def run(self) -> list[BlastHit]:
        """Execute the full pipeline and return hits sorted by E-value."""
        params = self.database.params
        matrix = self.database.matrix
        index = self.database.index
        codes_q = self.query.codes

        per_diagonal: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for q_offset, words in self._seed_words().items():
            for word in words:
                for seq_index, s_offset in index.lookup(word):
                    key = (seq_index, s_offset - q_offset)
                    per_diagonal.setdefault(key, []).append((q_offset, s_offset))
                    self.seed_hits += 1

        hits: dict[int, list[Hsp]] = {}
        for (seq_index, _diagonal), pairs in per_diagonal.items():
            pairs.sort()
            subject = self.database.sequences[seq_index]
            codes_s = subject.codes
            last_end = -1
            previous_q: int | None = None
            for q_offset, s_offset in pairs:
                if q_offset < last_end:
                    continue
                if not params.two_hit:
                    self.two_hit_triggers += 1
                    hsp = self._extend(
                        codes_q, codes_s, subject, q_offset, s_offset
                    )
                    if hsp is not None:
                        hits.setdefault(seq_index, []).append(hsp)
                        last_end = hsp.query_end
                    continue
                if previous_q is None:
                    previous_q = q_offset
                    continue
                distance = q_offset - previous_q
                if distance < params.word_size:
                    # Overlapping hit: keep the older one (NCBI behaviour).
                    continue
                if distance <= params.two_hit_window:
                    self.two_hit_triggers += 1
                    hsp = self._extend(
                        codes_q, codes_s, subject, q_offset, s_offset
                    )
                    previous_q = None
                    if hsp is not None:
                        hits.setdefault(seq_index, []).append(hsp)
                        last_end = hsp.query_end
                    continue
                previous_q = q_offset

        results = []
        for seq_index, hsps in hits.items():
            kept = self._cull(hsps)
            if kept:
                results.append(
                    BlastHit(self.database.sequences[seq_index], tuple(kept))
                )
        results.sort(key=lambda hit: (hit.best.evalue, -hit.best.score))
        return results

    def _extend(
        self,
        codes_q: tuple[int, ...],
        codes_s: tuple[int, ...],
        subject: Sequence,
        q_offset: int,
        s_offset: int,
    ) -> Hsp | None:
        params = self.database.params
        matrix = self.database.matrix
        self.ungapped_extensions += 1
        score, q_start, q_end = _ungapped_extend(
            codes_q,
            codes_s,
            q_offset,
            s_offset,
            params.word_size,
            matrix,
            params.x_drop_ungapped,
        )
        if score < params.gap_trigger:
            return None
        self.gapped_extensions += 1
        diagonal = s_offset - q_offset
        seed_mid = (q_start + q_end) // 2
        seed_mid = min(seed_mid, len(codes_q) - 1)
        seed_subject = min(seed_mid + diagonal, len(codes_s) - 1)
        if seed_subject < 0:
            return None
        extension: ExtensionResult = gapped_extension(
            self.query,
            subject,
            seed_mid,
            seed_subject,
            matrix,
            params.gaps,
            params.x_drop_gapped,
        )
        stats = self.database.stats
        evalue = stats.evalue(
            extension.score, len(self.query), self.database.total_length
        )
        if evalue > params.max_evalue:
            return None
        return Hsp(
            query_start=extension.query_start,
            query_end=extension.query_end,
            subject_start=extension.subject_start,
            subject_end=extension.subject_end,
            score=extension.score,
            bit_score=stats.bit_score(extension.score),
            evalue=evalue,
        )

    @staticmethod
    def _cull(hsps: list[Hsp]) -> list[Hsp]:
        """Drop HSPs that overlap a better one (simple greedy culling)."""
        kept: list[Hsp] = []
        for hsp in sorted(hsps, key=lambda h: -h.score):
            if not any(_overlaps(hsp, other) for other in kept):
                kept.append(hsp)
        return kept


def blastp(
    query: Sequence,
    database: BlastDatabase,
) -> list[BlastHit]:
    """Convenience wrapper: search ``query`` against ``database``."""
    return BlastSearch(query, database).run()


def blastn_parameters() -> BlastParameters:
    """NCBI-blastn-like parameters: 11-mer exact seeds, cheap gaps."""
    return BlastParameters(
        word_size=11,
        two_hit_window=60,
        x_drop_ungapped=10,
        x_drop_gapped=30,
        gap_trigger=25,
        gaps=GapPenalties(5, 2),
        exact_seeds=True,
    )


def blastn(query: Sequence, database: list[Sequence]) -> list[BlastHit]:
    """DNA search: build a blastn-style database and run the pipeline."""
    from repro.bio.scoring import dna_matrix

    db = BlastDatabase(
        database, matrix=dna_matrix(), params=blastn_parameters()
    )
    return BlastSearch(query, db).run()
