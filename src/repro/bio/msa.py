"""Clustalw-style progressive multiple sequence alignment.

The three stages of the paper's Clustalw description map to:

1. :func:`pairwise_distance_matrix` — all ``n(n-1)/2`` pairwise global
   alignments (the ``forward_pass`` / Needleman–Wunsch kernel), turned
   into distances via percent identity;
2. a guide tree from :mod:`repro.bio.guidetree` (UPGMA by default);
3. :func:`progressive_align` — profiles merged child-first along the
   tree with affine-gap profile-profile dynamic programming.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.guidetree import TreeNode, neighbour_joining, upgma
from repro.bio.kmer import shared_kmer_count
from repro.bio.pairwise import NEG_INF, needleman_wunsch
from repro.bio.scoring import GapPenalties, SubstitutionMatrix, default_matrix
from repro.bio.sequence import Sequence
from repro.errors import AlignmentError


def read_alignment(path) -> tuple[list[str], list[str]]:
    """Read an aligned FASTA file into ``(ids, gapped rows)``.

    The inverse of :func:`write_alignment`. Rows must be equal length;
    they feed directly into :func:`repro.bio.hmm.build_hmm` or
    :func:`repro.bio.phylo.fitch_score`.
    """
    ids: list[str] = []
    rows: list[str] = []
    current: list[str] = []
    with open(path, encoding="ascii") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if ids:
                    rows.append("".join(current))
                ids.append(line[1:].split()[0])
                current = []
            else:
                current.append(line.upper())
    if ids:
        rows.append("".join(current))
    if not rows:
        raise AlignmentError(f"{path}: no aligned records")
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise AlignmentError(f"{path}: rows have unequal lengths")
    return ids, rows


def write_alignment(path, msa: "Msa", width: int = 60) -> None:
    """Write an :class:`Msa` as aligned (gapped) FASTA."""
    with open(path, "w", encoding="ascii") as handle:
        for seq, row in zip(msa.sequences, msa.rows):
            handle.write(f">{seq.id}\n")
            for start in range(0, len(row), width):
                handle.write(row[start : start + width] + "\n")


@dataclass(frozen=True)
class Msa:
    """A finished multiple alignment.

    ``rows`` are equal-length gapped strings ordered like ``sequences``;
    ``tree`` is the guide tree; ``distances`` the pairwise matrix that
    produced it.
    """

    sequences: tuple[Sequence, ...]
    rows: tuple[str, ...]
    tree: TreeNode
    distances: np.ndarray

    @property
    def width(self) -> int:
        return len(self.rows[0]) if self.rows else 0

    def column(self, index: int) -> str:
        """The residues (and gaps) of alignment column ``index``."""
        return "".join(row[index] for row in self.rows)

    def pretty(self, width: int = 60) -> str:
        """Clustal-like block rendering."""
        label_width = max(len(seq.id) for seq in self.sequences) + 2
        blocks: list[str] = []
        for start in range(0, self.width, width):
            for seq, row in zip(self.sequences, self.rows):
                blocks.append(
                    f"{seq.id:<{label_width}}{row[start : start + width]}"
                )
            blocks.append("")
        return "\n".join(blocks).rstrip("\n")


def pairwise_distance_matrix(
    sequences: list[Sequence],
    matrix: SubstitutionMatrix | None = None,
    gaps: GapPenalties = GapPenalties(10, 1),
    method: str = "full",
    ktup: int = 2,
) -> np.ndarray:
    """Distance matrix over ``sequences``.

    ``method="full"`` performs a global alignment per pair and reports
    ``1 - identity`` — Clustalw's slow/accurate mode whose inner loop is
    the ``forward_pass`` kernel. ``method="ktuple"`` is the quick mode:
    one minus the shared-word fraction.
    """
    if len(sequences) < 2:
        raise AlignmentError("need at least two sequences")
    if matrix is None:
        matrix = default_matrix(sequences[0].alphabet)
    n = len(sequences)
    distances = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            if method == "full":
                alignment = needleman_wunsch(
                    sequences[i], sequences[j], matrix, gaps
                )
                distance = 1.0 - alignment.identity
            elif method == "ktuple":
                shared = shared_kmer_count(sequences[i], sequences[j], ktup)
                shortest = min(len(sequences[i]), len(sequences[j]))
                possible = max(1, shortest - ktup + 1)
                distance = 1.0 - min(1.0, shared / possible)
            else:
                raise AlignmentError(f"unknown distance method {method!r}")
            distances[i, j] = distances[j, i] = distance
    return distances


def sequence_weights(tree: TreeNode, n_sequences: int) -> np.ndarray:
    """Thompson-style sequence weights from guide-tree branch lengths.

    Each leaf receives the sum over its ancestral branches of
    ``branch length / leaves below that branch``; weights are normalised
    to mean 1. Equal weights are returned for degenerate (zero-height)
    trees.
    """
    weights = np.zeros(n_sequences)

    def walk(node: TreeNode, acc: float) -> None:
        if node.is_leaf:
            assert node.index is not None
            weights[node.index] = acc
            return
        assert node.left is not None and node.right is not None
        for child in (node.left, node.right):
            branch = max(0.0, node.height - child.height)
            walk(child, acc + branch / len(child.leaves))

    walk(tree, 0.0)
    total = weights.sum()
    if total <= 0:
        return np.ones(n_sequences)
    return weights * n_sequences / total


class _Profile:
    """An intermediate profile: gapped rows plus their sequence indices."""

    def __init__(self, indices: list[int], rows: list[str]) -> None:
        self.indices = indices
        self.rows = rows

    @property
    def width(self) -> int:
        return len(self.rows[0])


def _column_scores(
    profile: _Profile,
    matrix: SubstitutionMatrix,
    weights: np.ndarray,
) -> list[tuple[list[tuple[int, float]], float]]:
    """Pre-digest each column into (residue code, weight) pairs.

    Returns per column: the weighted residue codes and the total residue
    weight (gap positions are excluded).
    """
    alphabet = matrix.alphabet
    digest = []
    for col in range(profile.width):
        pairs: list[tuple[int, float]] = []
        total = 0.0
        for row, seq_index in zip(profile.rows, profile.indices):
            symbol = row[col]
            if symbol == "-":
                continue
            weight = float(weights[seq_index])
            pairs.append((alphabet.code(symbol), weight))
            total += weight
        digest.append((pairs, total))
    return digest


def align_profiles(
    profile_a: _Profile,
    profile_b: _Profile,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties,
    weights: np.ndarray,
) -> _Profile:
    """Merge two profiles with affine-gap profile-profile DP.

    Column-pair score = weighted average substitution score over residue
    pairs drawn one from each column (gaps contribute nothing).
    """
    digest_a = _column_scores(profile_a, matrix, weights)
    digest_b = _column_scores(profile_b, matrix, weights)
    m, n = len(digest_a), len(digest_b)
    scores = matrix.scores

    def pair_score(col_a: int, col_b: int) -> int:
        pairs_a, total_a = digest_a[col_a]
        pairs_b, total_b = digest_b[col_b]
        if not pairs_a or not pairs_b:
            return 0
        acc = 0.0
        for code_a, weight_a in pairs_a:
            row = scores[code_a]
            for code_b, weight_b in pairs_b:
                acc += weight_a * weight_b * row[code_b]
        return int(round(acc / (total_a * total_b)))

    open_cost = gaps.open_ + gaps.extend
    extend_cost = gaps.extend
    v = [[NEG_INF] * (n + 1) for _ in range(m + 1)]
    e = [[NEG_INF] * (n + 1) for _ in range(m + 1)]
    f = [[NEG_INF] * (n + 1) for _ in range(m + 1)]
    v[0][0] = 0
    for j in range(1, n + 1):
        e[0][j] = -gaps.cost(j)
        v[0][j] = e[0][j]
    for i in range(1, m + 1):
        f[i][0] = -gaps.cost(i)
        v[i][0] = f[i][0]
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            e[i][j] = max(e[i][j - 1] - extend_cost, v[i][j - 1] - open_cost)
            f[i][j] = max(f[i - 1][j] - extend_cost, v[i - 1][j] - open_cost)
            g = v[i - 1][j - 1] + pair_score(i - 1, j - 1)
            v[i][j] = max(e[i][j], f[i][j], g)

    # Traceback into merged gapped rows.
    columns: list[tuple[int | None, int | None]] = []
    i, j, state = m, n, "v"
    while i > 0 or j > 0:
        if state == "v":
            if j > 0 and v[i][j] == e[i][j]:
                state = "e"
            elif i > 0 and v[i][j] == f[i][j]:
                state = "f"
            else:
                columns.append((i - 1, j - 1))
                i -= 1
                j -= 1
        elif state == "e":
            columns.append((None, j - 1))
            if j == 1 or e[i][j] != e[i][j - 1] - extend_cost:
                state = "v"
            j -= 1
        else:
            columns.append((i - 1, None))
            if i == 1 or f[i][j] != f[i - 1][j] - extend_cost:
                state = "v"
            i -= 1
    columns.reverse()

    merged_rows: list[str] = []
    for row in profile_a.rows:
        merged_rows.append(
            "".join("-" if ca is None else row[ca] for ca, _ in columns)
        )
    for row in profile_b.rows:
        merged_rows.append(
            "".join("-" if cb is None else row[cb] for _, cb in columns)
        )
    return _Profile(profile_a.indices + profile_b.indices, merged_rows)


def progressive_align(
    sequences: list[Sequence],
    tree: TreeNode,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties,
    weights: np.ndarray | None = None,
) -> list[str]:
    """Align ``sequences`` following ``tree``; returns rows in input order."""
    if weights is None:
        weights = sequence_weights(tree, len(sequences))
    profiles: dict[int, _Profile] = {}

    def build(node: TreeNode) -> _Profile:
        if node.is_leaf:
            assert node.index is not None
            return _Profile([node.index], [sequences[node.index].residues])
        assert node.left is not None and node.right is not None
        return align_profiles(
            build(node.left), build(node.right), matrix, gaps, weights
        )

    final = build(tree)
    by_index = dict(zip(final.indices, final.rows))
    return [by_index[i] for i in range(len(sequences))]


def sum_of_pairs_score(
    rows: list[str] | tuple[str, ...],
    matrix: SubstitutionMatrix,
    gap_penalty: int = 4,
) -> int:
    """Sum-of-pairs alignment score (the standard MSA objective).

    Every pair of rows contributes, per column: the substitution score
    for residue/residue, ``-gap_penalty`` for residue/gap, and zero for
    gap/gap.
    """
    if not rows:
        raise AlignmentError("need rows to score")
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise AlignmentError("rows must have equal length")
    alphabet = matrix.alphabet
    coded = [
        [-1 if symbol == "-" else alphabet.code(symbol) for symbol in row]
        for row in rows
    ]
    scores = matrix.scores
    total = 0
    for i in range(len(rows)):
        row_i = coded[i]
        for j in range(i + 1, len(rows)):
            row_j = coded[j]
            for a, b in zip(row_i, row_j):
                if a >= 0 and b >= 0:
                    total += int(scores[a, b])
                elif a >= 0 or b >= 0:
                    total -= gap_penalty
    return total


def _strip_gap_columns(rows: list[str]) -> list[str]:
    """Drop columns that are gaps in every row."""
    keep = [
        col
        for col in range(len(rows[0]))
        if any(row[col] != "-" for row in rows)
    ]
    return ["".join(row[col] for col in keep) for row in rows]


def iterative_refine(
    msa: Msa,
    rounds: int = 2,
    matrix: SubstitutionMatrix | None = None,
    gaps: GapPenalties = GapPenalties(10, 1),
    gap_penalty: int = 4,
) -> Msa:
    """Leave-one-out refinement of a progressive alignment.

    Each round removes one sequence, realigns it against the profile of
    the rest, and keeps the result if the sum-of-pairs score improves —
    the classic post-processing step that fixes early guide-tree
    mistakes.
    """
    if matrix is None:
        matrix = default_matrix(msa.sequences[0].alphabet)
    rows = list(msa.rows)
    n = len(rows)
    weights = np.ones(n)
    best_score = sum_of_pairs_score(rows, matrix, gap_penalty)
    for _ in range(max(0, rounds)):
        improved = False
        for index in range(n):
            others = [row for i, row in enumerate(rows) if i != index]
            others = _strip_gap_columns(others)
            other_indices = [i for i in range(n) if i != index]
            lone = _Profile(
                [index], [msa.sequences[index].residues]
            )
            rest = _Profile(other_indices, others)
            merged = align_profiles(rest, lone, matrix, gaps, weights)
            by_index = dict(zip(merged.indices, merged.rows))
            candidate = _strip_gap_columns(
                [by_index[i] for i in range(n)]
            )
            score = sum_of_pairs_score(candidate, matrix, gap_penalty)
            if score > best_score:
                rows = candidate
                best_score = score
                improved = True
        if not improved:
            break
    return Msa(msa.sequences, tuple(rows), msa.tree, msa.distances)


def clustalw(
    sequences: list[Sequence],
    matrix: SubstitutionMatrix | None = None,
    gaps: GapPenalties = GapPenalties(10, 1),
    distance_method: str = "full",
    tree_method: str = "upgma",
) -> Msa:
    """Run the full three-stage Clustalw pipeline."""
    if len(sequences) < 2:
        raise AlignmentError("need at least two sequences to align")
    if matrix is None:
        matrix = default_matrix(sequences[0].alphabet)
    distances = pairwise_distance_matrix(
        sequences, matrix, gaps, method=distance_method
    )
    if tree_method == "upgma":
        tree = upgma(distances)
    elif tree_method == "nj":
        tree = neighbour_joining(distances)
    else:
        raise AlignmentError(f"unknown tree method {tree_method!r}")
    rows = progressive_align(sequences, tree, matrix, gaps)
    return Msa(tuple(sequences), tuple(rows), tree, distances)
