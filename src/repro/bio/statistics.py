"""Karlin–Altschul statistics for local-alignment scores.

Blast converts raw alignment scores into bit scores and E-values using
the Karlin–Altschul parameters ``lambda`` and ``K``. ``lambda`` is the
unique positive root of ``sum_ij p_i p_j exp(lambda * s_ij) = 1`` over
the background residue frequencies; we solve it by bisection. ``K`` is
approximated with the first term of Karlin–Altschul's series — adequate
here because only score *ranking* matters to the workload study, not
database-calibrated significance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bio.alphabet import PROTEIN, Alphabet
from repro.bio.scoring import SubstitutionMatrix
from repro.errors import ScoringError

#: Robinson & Robinson (1991) background amino-acid frequencies.
ROBINSON_FREQUENCIES = {
    "A": 0.07805, "R": 0.05129, "N": 0.04487, "D": 0.05364, "C": 0.01925,
    "Q": 0.04264, "E": 0.06295, "G": 0.07377, "H": 0.02199, "I": 0.05142,
    "L": 0.09019, "K": 0.05744, "M": 0.02243, "F": 0.03856, "P": 0.05203,
    "S": 0.07120, "T": 0.05841, "W": 0.01330, "Y": 0.03216, "V": 0.06441,
}


def background_frequencies(alphabet: Alphabet) -> np.ndarray:
    """Background frequency vector aligned with the alphabet's codes.

    Protein uses the Robinson–Robinson table; any other alphabet gets a
    uniform distribution over its non-wildcard symbols.
    """
    freqs = np.zeros(len(alphabet))
    if alphabet == PROTEIN:
        for symbol, value in ROBINSON_FREQUENCIES.items():
            freqs[alphabet.code(symbol)] = value
    else:
        real = [
            code
            for code in range(len(alphabet))
            if alphabet.symbol(code) not in (alphabet.wildcard, "*")
        ]
        freqs[real] = 1.0 / len(real)
    return freqs / freqs.sum()


@dataclass(frozen=True)
class KarlinAltschulParams:
    """The (lambda, K, H) triple used for E-value computation."""

    lambda_: float
    k: float
    h: float

    def bit_score(self, raw_score: int) -> float:
        """Normalised bit score of a raw alignment score."""
        return (self.lambda_ * raw_score - math.log(self.k)) / math.log(2.0)

    def evalue(self, raw_score: int, query_length: int, db_length: int) -> float:
        """Expected number of chance HSPs with at least ``raw_score``."""
        if query_length <= 0 or db_length <= 0:
            raise ScoringError("search space dimensions must be positive")
        return (
            self.k
            * query_length
            * db_length
            * math.exp(-self.lambda_ * raw_score)
        )


def _score_moment(
    matrix: SubstitutionMatrix, freqs: np.ndarray, lambda_: float
) -> float:
    """E[exp(lambda * S)] - 1 over the background pair distribution."""
    weights = np.outer(freqs, freqs)
    return float(
        (weights * np.exp(lambda_ * matrix.scores.astype(float))).sum() - 1.0
    )


def expected_score(matrix: SubstitutionMatrix, freqs: np.ndarray) -> float:
    """Expected per-pair score under the background distribution."""
    weights = np.outer(freqs, freqs)
    return float((weights * matrix.scores).sum())


def solve_lambda(
    matrix: SubstitutionMatrix,
    freqs: np.ndarray | None = None,
    tolerance: float = 1e-9,
) -> float:
    """Solve for the Karlin–Altschul ``lambda`` by bisection.

    Requires the matrix to have a negative expected score and at least
    one positive entry — the standard admissibility conditions for local
    alignment statistics.
    """
    if freqs is None:
        freqs = background_frequencies(matrix.alphabet)
    if expected_score(matrix, freqs) >= 0:
        raise ScoringError(
            f"matrix {matrix.name!r} has non-negative expected score; "
            "Karlin-Altschul statistics are undefined"
        )
    if matrix.max_score <= 0:
        raise ScoringError(
            f"matrix {matrix.name!r} has no positive scores"
        )
    # f(lambda) = E[exp(lambda S)] - 1 is convex with f(0) = 0, f'(0) < 0
    # and f -> +inf, so the positive root is bracketed by doubling.
    hi = 0.5
    while _score_moment(matrix, freqs, hi) < 0:
        hi *= 2.0
        if hi > 1e6:
            raise ScoringError("failed to bracket lambda")
    lo = 0.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if _score_moment(matrix, freqs, mid) < 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def karlin_altschul_params(
    matrix: SubstitutionMatrix, freqs: np.ndarray | None = None
) -> KarlinAltschulParams:
    """Compute (lambda, K, H) for ``matrix`` over background ``freqs``.

    ``K`` uses the leading-term approximation
    ``K ~= H / lambda * exp(-lambda * s_max)``, clamped to a sane floor;
    ``H`` is the relative entropy of the implied target distribution.
    """
    if freqs is None:
        freqs = background_frequencies(matrix.alphabet)
    lambda_ = solve_lambda(matrix, freqs)
    weights = np.outer(freqs, freqs)
    scores = matrix.scores.astype(float)
    target = weights * np.exp(lambda_ * scores)
    total = target.sum()
    target = target / total
    h = float((target * lambda_ * scores).sum())
    k = max(1e-4, (h / lambda_) * math.exp(-lambda_ * matrix.max_score))
    return KarlinAltschulParams(lambda_=lambda_, k=k, h=h)
