"""Banded and X-drop dynamic programming.

Two restricted-DP routines used by the heuristic search tools:

* :func:`xdrop_extend` / :func:`gapped_extension` — the gapped extension
  step of Blast (the paper's ``SEMI_G_ALIGN_EX`` kernel): starting from a
  seed pair, dynamic programming is pushed outward in both directions and
  rows are pruned once they fall more than ``x_drop`` below the best score
  seen so far.
* :func:`banded_local_score` — Smith–Waterman restricted to a diagonal
  band, used by Fasta to rescore its best initial diagonal region.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence as SequenceABC

from repro.bio.pairwise import NEG_INF
from repro.bio.scoring import GapPenalties, SubstitutionMatrix
from repro.bio.sequence import Sequence
from repro.errors import AlignmentError


@dataclass(frozen=True)
class ExtensionResult:
    """Result of a two-sided gapped extension around a seed.

    Offsets are 0-based and half-open in the respective sequence.
    """

    score: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int

    @property
    def query_length(self) -> int:
        return self.query_end - self.query_start

    @property
    def subject_length(self) -> int:
        return self.subject_end - self.subject_start


def xdrop_extend(
    codes_a: SequenceABC[int],
    codes_b: SequenceABC[int],
    matrix: SubstitutionMatrix,
    gaps: GapPenalties,
    x_drop: int,
) -> tuple[int, int, int]:
    """One-sided gapped X-drop extension from ``(0, 0)``.

    Runs semi-global affine DP over prefixes of ``codes_a``/``codes_b``,
    dropping any cell whose value falls more than ``x_drop`` below the
    best score found so far. Returns ``(best_score, end_a, end_b)`` where
    the ends are the lengths of the best-scoring aligned prefixes (both 0
    when even the first pair scores negatively).
    """
    if x_drop <= 0:
        raise AlignmentError(f"x_drop must be positive, got {x_drop}")
    m, n = len(codes_a), len(codes_b)
    if m == 0 or n == 0:
        return 0, 0, 0
    open_cost = gaps.open_ + gaps.extend
    extend_cost = gaps.extend
    scores = matrix.scores

    best, best_i, best_j = 0, 0, 0
    # Sparse rows: value maps only live columns to (v, e, f).
    prev: dict[int, tuple[int, int, int]] = {0: (0, NEG_INF, NEG_INF)}
    # Border of row 0: pure gap, pruned by x_drop against score 0.
    j = 1
    while j <= n and gaps.cost(j) <= x_drop:
        prev[j] = (-gaps.cost(j), -gaps.cost(j), NEG_INF)
        j += 1

    for i in range(1, m + 1):
        matrix_row = scores[codes_a[i - 1]]
        current: dict[int, tuple[int, int, int]] = {}
        if gaps.cost(i) <= best + x_drop:
            border = -gaps.cost(i)
            current[0] = (border, NEG_INF, border)
        live = sorted(set(prev) | {j + 1 for j in prev})
        for j in live:
            if j == 0 or j > n:
                continue
            v_diag = prev.get(j - 1, (NEG_INF, NEG_INF, NEG_INF))[0]
            v_up, _, f_up = prev.get(j, (NEG_INF, NEG_INF, NEG_INF))
            v_left, e_left, _ = current.get(j - 1, (NEG_INF, NEG_INF, NEG_INF))
            e = max(e_left - extend_cost, v_left - open_cost)
            f = max(f_up - extend_cost, v_up - open_cost)
            g = (
                v_diag + matrix_row[codes_b[j - 1]]
                if v_diag > NEG_INF // 2
                else NEG_INF
            )
            value = max(e, f, g)
            if value < best - x_drop:
                continue
            current[j] = (value, e, f)
            if value > best:
                best, best_i, best_j = value, i, j
        if not current:
            break
        prev = current
    return int(best), best_i, best_j


def gapped_extension(
    query: Sequence,
    subject: Sequence,
    seed_query: int,
    seed_subject: int,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(),
    x_drop: int = 25,
) -> ExtensionResult:
    """Two-sided gapped extension around a seed pair (Blast's kernel).

    The seed residues ``query[seed_query]`` / ``subject[seed_subject]``
    anchor the extension: DP runs leftward over the reversed prefixes and
    rightward over the suffixes, and the two best scores are combined with
    the seed pair's own substitution score.
    """
    if not 0 <= seed_query < len(query):
        raise AlignmentError(f"seed_query {seed_query} out of range")
    if not 0 <= seed_subject < len(subject):
        raise AlignmentError(f"seed_subject {seed_subject} out of range")
    codes_q, codes_s = query.codes, subject.codes
    seed_score = matrix.score(codes_q[seed_query], codes_s[seed_subject])

    left_q = codes_q[:seed_query][::-1]
    left_s = codes_s[:seed_subject][::-1]
    left_score, left_i, left_j = xdrop_extend(left_q, left_s, matrix, gaps, x_drop)

    right_q = codes_q[seed_query + 1 :]
    right_s = codes_s[seed_subject + 1 :]
    right_score, right_i, right_j = xdrop_extend(
        right_q, right_s, matrix, gaps, x_drop
    )
    return ExtensionResult(
        score=seed_score + left_score + right_score,
        query_start=seed_query - left_i,
        query_end=seed_query + 1 + right_i,
        subject_start=seed_subject - left_j,
        subject_end=seed_subject + 1 + right_j,
    )


def banded_local_score(
    seq_a: Sequence,
    seq_b: Sequence,
    center_diagonal: int,
    bandwidth: int,
    matrix: SubstitutionMatrix,
    gaps: GapPenalties = GapPenalties(),
) -> int:
    """Smith–Waterman score restricted to a diagonal band.

    Cells ``(i, j)`` participate only when
    ``|(j - i) - center_diagonal| <= bandwidth``. Fasta uses this to
    rescore the neighbourhood of its best initial diagonal cheaply.
    """
    if bandwidth < 0:
        raise AlignmentError(f"bandwidth must be >= 0, got {bandwidth}")
    codes_a, codes_b = seq_a.codes, seq_b.codes
    m, n = len(codes_a), len(codes_b)
    open_cost = gaps.open_ + gaps.extend
    extend_cost = gaps.extend
    scores = matrix.scores

    best = 0
    prev_v = [0] * (n + 1)
    prev_f = [NEG_INF] * (n + 1)
    for i in range(1, m + 1):
        lo = max(1, i + center_diagonal - bandwidth)
        hi = min(n, i + center_diagonal + bandwidth)
        row_v = [0] * (n + 1)
        row_f = [NEG_INF] * (n + 1)
        if lo > hi:
            prev_v, prev_f = row_v, row_f
            continue
        matrix_row = scores[codes_a[i - 1]]
        e = NEG_INF
        for j in range(lo, hi + 1):
            e = max(e - extend_cost, row_v[j - 1] - open_cost)
            f = max(prev_f[j] - extend_cost, prev_v[j] - open_cost)
            g = prev_v[j - 1] + matrix_row[codes_b[j - 1]]
            value = max(e, f, g, 0)
            row_v[j] = value
            row_f[j] = f
            if value > best:
                best = value
        prev_v, prev_f = row_v, row_f
    return int(best)
