"""Glimmer-style gene finding (the paper's §VIII extension).

A compact version of Glimmer's pipeline for prokaryotic DNA:

1. :func:`find_orfs` — scan all six reading frames for open reading
   frames between a start codon and the first in-frame stop;
2. :class:`InterpolatedMarkovModel` — per-order Markov scoring of
   coding vs background composition, trained on example genes (the
   interpolation is the length-weighted blend Glimmer uses);
3. :func:`glimmer` — score every candidate ORF and keep those whose
   coding log-odds clears a threshold.

Like the alignment kernels, the scorer's inner loop is a chain of
value-dependent conditionals over irregular data — the reason the
paper expects its ISA findings to carry over to Glimmer.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from repro.bio.alphabet import DNA
from repro.bio.sequence import Sequence
from repro.errors import WorkloadError

START_CODONS = ("ATG", "GTG", "TTG")
STOP_CODONS = ("TAA", "TAG", "TGA")

_COMPLEMENT = {"A": "T", "T": "A", "C": "G", "G": "C", "N": "N"}


def reverse_complement(seq: Sequence) -> Sequence:
    """Reverse complement of a DNA sequence."""
    if seq.alphabet != DNA:
        raise WorkloadError("reverse complement needs a DNA sequence")
    complement = "".join(_COMPLEMENT[base] for base in reversed(seq.residues))
    return Sequence(f"{seq.id}_rc", complement, DNA)


@dataclass(frozen=True)
class Orf:
    """An open reading frame.

    ``start``/``end`` are 0-based offsets on the *forward* strand of
    the input; ``strand`` is ``+1`` or ``-1``; the coding sequence runs
    start..end exclusive in reading order on its own strand.
    """

    start: int
    end: int
    strand: int
    codons: str

    @property
    def length(self) -> int:
        return len(self.codons)


def _scan_strand(residues: str, strand: int, total: int, min_length: int):
    """Every (start codon, first in-frame stop) pair on one strand.

    All candidate starts are reported per stop — the downstream scorer
    picks the best one, as Glimmer's start-site selection does.
    """
    found = []
    n = len(residues)
    for frame in range(3):
        pending: list[int] = []
        for position in range(frame, n - 2, 3):
            codon = residues[position : position + 3]
            if codon in STOP_CODONS:
                for start_position in pending:
                    coding = residues[start_position : position + 3]
                    if len(coding) >= min_length:
                        if strand > 0:
                            start, end = start_position, position + 3
                        else:
                            start = total - (position + 3)
                            end = total - start_position
                        found.append(Orf(start, end, strand, coding))
                pending.clear()
            elif codon in START_CODONS:
                pending.append(position)
    return found


def find_orfs(seq: Sequence, min_length: int = 60) -> list[Orf]:
    """All ORFs on both strands, at least ``min_length`` bases long."""
    if seq.alphabet != DNA:
        raise WorkloadError("ORF finding needs a DNA sequence")
    if min_length < 6:
        raise WorkloadError("min_length must cover start + stop codons")
    forward = _scan_strand(seq.residues, +1, len(seq), min_length)
    reverse = _scan_strand(
        reverse_complement(seq).residues, -1, len(seq), min_length
    )
    return sorted(forward + reverse, key=lambda orf: (orf.start, orf.strand))


class InterpolatedMarkovModel:
    """Fixed-order interpolated Markov chain over DNA.

    Orders 0..``max_order`` are trained simultaneously; scoring blends
    the per-order conditional probabilities with weights that grow with
    the observed context count (Glimmer's confidence interpolation,
    simplified to ``count / (count + pseudo)``).
    """

    def __init__(self, max_order: int = 5, pseudo: float = 10.0) -> None:
        if max_order < 0:
            raise WorkloadError("max_order must be >= 0")
        self.max_order = max_order
        self.pseudo = pseudo
        # counts[k][context] = {base: count}
        self._counts: list[dict[str, dict[str, float]]] = [
            defaultdict(lambda: defaultdict(float))
            for _ in range(max_order + 1)
        ]
        self.trained_bases = 0

    def train(self, residues: str) -> None:
        """Accumulate counts from one training string."""
        text = residues.upper()
        for position, base in enumerate(text):
            if base not in "ACGT":
                continue
            for order in range(self.max_order + 1):
                if position < order:
                    break
                context = text[position - order : position]
                self._counts[order][context][base] += 1
        self.trained_bases += len(text)

    def _order_probability(
        self, order: int, context: str, base: str
    ) -> tuple[float, float]:
        """(probability, context count) for one order."""
        table = self._counts[order].get(context)
        if not table:
            return 0.25, 0.0
        total = sum(table.values())
        probability = (table.get(base, 0.0) + 0.25) / (total + 1.0)
        return probability, total

    def probability(self, context: str, base: str) -> float:
        """Interpolated P(base | context)."""
        probability = 0.25  # order -1 fallback
        for order in range(self.max_order + 1):
            if len(context) < order:
                break
            suffix = context[len(context) - order :] if order else ""
            p_k, count = self._order_probability(order, suffix, base)
            weight = count / (count + self.pseudo)
            probability = (1.0 - weight) * probability + weight * p_k
        return probability

    def log_odds(self, residues: str, background: "InterpolatedMarkovModel") -> float:
        """Log-odds (nats) of ``residues`` under self vs background."""
        text = residues.upper()
        total = 0.0
        for position, base in enumerate(text):
            if base not in "ACGT":
                continue
            context = text[max(0, position - self.max_order) : position]
            total += math.log(
                self.probability(context, base)
                / background.probability(context, base)
            )
        return total


@dataclass(frozen=True)
class GenePrediction:
    """One predicted gene with its coding log-odds score."""

    orf: Orf
    score: float


def glimmer(
    genome: Sequence,
    training_genes: list[str],
    min_length: int = 60,
    threshold: float = 0.0,
    max_order: int = 5,
) -> list[GenePrediction]:
    """Predict genes in ``genome`` given example coding sequences.

    The coding model trains on ``training_genes``; the background model
    trains on the genome itself. ORFs whose per-base coding log-odds is
    above ``threshold`` are reported, best first.
    """
    if not training_genes:
        raise WorkloadError("need training genes for the coding model")
    coding = InterpolatedMarkovModel(max_order=max_order)
    for gene in training_genes:
        coding.train(gene)
    background = InterpolatedMarkovModel(max_order=max_order)
    background.train(genome.residues)

    # Score every candidate start, keep the best start per stop codon
    # (Glimmer's start-site selection), then apply the threshold.
    best_per_stop: dict[tuple[int, int], GenePrediction] = {}
    for orf in find_orfs(genome, min_length=min_length):
        score = coding.log_odds(orf.codons, background) / orf.length
        key = (orf.strand, orf.end if orf.strand > 0 else orf.start)
        incumbent = best_per_stop.get(key)
        if incumbent is None or score > incumbent.score:
            best_per_stop[key] = GenePrediction(orf, score)
    predictions = [
        p for p in best_per_stop.values() if p.score > threshold
    ]
    predictions.sort(key=lambda p: -p.score)
    return predictions
