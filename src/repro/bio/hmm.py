"""Plan7-lite profile hidden Markov models.

A trimmed-down version of HMMER2's Plan7 architecture: match, insert and
delete states per model position, with local entry (begin -> any match)
and local exit (any match -> end). All scores are integer-scaled
log-odds (:data:`SCALE` units per nat) so that the mini-ISA ``p7_viterbi``
kernel — which runs in integer arithmetic exactly like HMMER2's — can be
validated bit-for-bit against :func:`viterbi_score`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bio.alphabet import Alphabet
from repro.bio.sequence import Sequence
from repro.bio.statistics import background_frequencies
from repro.errors import HmmError

#: Fixed-point scale: score units per nat of log-odds.
SCALE = 1000

#: "Minus infinity" for integer Viterbi; safe under repeated addition.
NEG_INF_SCORE = -(1 << 30)


def log_odds(probability: float, background: float) -> int:
    """Integer-scaled log-odds score of ``probability`` vs ``background``."""
    if probability <= 0.0:
        return NEG_INF_SCORE
    return int(round(SCALE * math.log(probability / background)))


def log_prob(probability: float) -> int:
    """Integer-scaled log of a transition probability."""
    if probability <= 0.0:
        return NEG_INF_SCORE
    return int(round(SCALE * math.log(probability)))


@dataclass
class ProfileHmm:
    """A profile HMM with integer log-odds scores.

    Arrays are indexed by model position ``k`` (0-based over ``length``
    match states). Transition arrays hold the score of leaving position
    ``k``; entries that would leave the model are minus infinity.
    """

    name: str
    alphabet: Alphabet
    match_scores: np.ndarray  # (length, |alphabet|) int32
    insert_scores: np.ndarray  # (length, |alphabet|) int32
    t_mm: np.ndarray
    t_mi: np.ndarray
    t_md: np.ndarray
    t_im: np.ndarray
    t_ii: np.ndarray
    t_dm: np.ndarray
    t_dd: np.ndarray
    begin_to_match: np.ndarray  # (length,) local entry scores
    match_to_end: np.ndarray  # (length,) local exit scores

    def __post_init__(self) -> None:
        length = self.length
        expected_2d = (length, len(self.alphabet))
        if self.match_scores.shape != expected_2d:
            raise HmmError(
                f"match_scores shape {self.match_scores.shape} != {expected_2d}"
            )
        for name in ("t_mm", "t_mi", "t_md", "t_im", "t_ii", "t_dm", "t_dd",
                     "begin_to_match", "match_to_end"):
            array = getattr(self, name)
            if array.shape != (length,):
                raise HmmError(f"{name} must have shape ({length},)")

    @property
    def length(self) -> int:
        """Number of match states."""
        return self.match_scores.shape[0]

    def __repr__(self) -> str:
        return f"ProfileHmm({self.name!r}, length={self.length})"


def build_hmm(
    name: str,
    aligned: list[str],
    alphabet: Alphabet,
    match_threshold: float = 0.5,
    pseudocount: float = 1.0,
) -> ProfileHmm:
    """Estimate a profile HMM from an aligned sequence family.

    ``aligned`` holds equal-length rows with ``-`` for gaps. Columns where
    at least ``match_threshold`` of rows have a residue become match
    states (the HMMER2 default rule). Emissions and transitions are
    maximum-likelihood estimates with Laplace ``pseudocount`` smoothing,
    converted to integer log-odds against the background distribution.
    """
    if not aligned:
        raise HmmError("need at least one aligned sequence")
    width = len(aligned[0])
    if width == 0 or any(len(row) != width for row in aligned):
        raise HmmError("aligned rows must be non-empty and equal length")

    rows = [row.upper() for row in aligned]
    n_rows = len(rows)
    match_columns = [
        col
        for col in range(width)
        if sum(1 for row in rows if row[col] != "-") >= match_threshold * n_rows
    ]
    if not match_columns:
        raise HmmError("alignment has no match columns")
    length = len(match_columns)
    size = len(alphabet)
    background = background_frequencies(alphabet)
    background = np.maximum(background, 1e-9)

    match_counts = np.full((length, size), pseudocount)
    insert_counts = np.full((length, size), pseudocount)
    # Transition counts out of (match, insert, delete) at position k.
    transitions = {
        key: np.full(length, pseudocount)
        for key in ("mm", "mi", "md", "im", "ii", "dm", "dd")
    }

    column_kind = ["insert"] * width
    for position, col in enumerate(match_columns):
        column_kind[col] = position  # type: ignore[call-overload]

    for row in rows:
        state = "m"  # virtual begin behaves like a match state
        position = -1
        for col in range(width):
            kind = column_kind[col]
            symbol = row[col]
            if kind == "insert":
                if symbol == "-":
                    continue
                insert_at = max(position, 0)
                insert_counts[insert_at, alphabet.code(symbol)] += 1
                if state == "m":
                    if position >= 0:
                        transitions["mi"][position] += 1
                    state = "i"
                elif state == "i":
                    transitions["ii"][insert_at] += 1
                continue
            # Match column.
            next_position = kind
            if symbol == "-":
                new_state = "d"
            else:
                match_counts[next_position, alphabet.code(symbol)] += 1
                new_state = "m"
            if position >= 0:
                key = state + new_state
                if key == "id":
                    # Plan7 has no I->D edge; attribute the exit to I->M.
                    key = "im"
                transitions[key][position] += 1
            elif state == "i":
                transitions["im"][0] += 1
            state = new_state
            position = next_position

    def normalise(counts: np.ndarray) -> np.ndarray:
        return counts / counts.sum(axis=1, keepdims=True)

    match_probs = normalise(match_counts)
    insert_probs = normalise(insert_counts)
    match_scores = np.array(
        [
            [log_odds(match_probs[k, c], background[c]) for c in range(size)]
            for k in range(length)
        ],
        dtype=np.int64,
    )
    insert_scores = np.array(
        [
            [log_odds(insert_probs[k, c], background[c]) for c in range(size)]
            for k in range(length)
        ],
        dtype=np.int64,
    )

    def transition_scores(kind_out: tuple[str, str, str]) -> dict[str, np.ndarray]:
        """Normalise each state's out-transitions and convert to scores."""
        out: dict[str, np.ndarray] = {}
        totals = sum(transitions[key] for key in kind_out)
        for key in kind_out:
            probs = transitions[key] / totals
            out[key] = np.array(
                [log_prob(p) for p in probs], dtype=np.int64
            )
        return out

    m_out = transition_scores(("mm", "mi", "md"))
    # Insert and delete states have two out-transitions each.
    i_totals = transitions["im"] + transitions["ii"]
    i_out = {
        "im": np.array(
            [log_prob(p) for p in transitions["im"] / i_totals], dtype=np.int64
        ),
        "ii": np.array(
            [log_prob(p) for p in transitions["ii"] / i_totals], dtype=np.int64
        ),
    }
    d_totals = transitions["dm"] + transitions["dd"]
    d_out = {
        "dm": np.array(
            [log_prob(p) for p in transitions["dm"] / d_totals], dtype=np.int64
        ),
        "dd": np.array(
            [log_prob(p) for p in transitions["dd"] / d_totals], dtype=np.int64
        ),
    }

    # Local entry/exit: uniform over positions (Plan7 "fs" style).
    entry = log_prob(1.0 / length)
    begin_to_match = np.full(length, entry, dtype=np.int64)
    match_to_end = np.full(length, log_prob(1.0 / length), dtype=np.int64)

    # Last position cannot continue inside the model.
    m_out["mm"][length - 1] = NEG_INF_SCORE
    m_out["md"][length - 1] = NEG_INF_SCORE
    d_out["dm"][length - 1] = NEG_INF_SCORE
    d_out["dd"][length - 1] = NEG_INF_SCORE
    i_out["im"][length - 1] = NEG_INF_SCORE

    return ProfileHmm(
        name=name,
        alphabet=alphabet,
        match_scores=match_scores,
        insert_scores=insert_scores,
        t_mm=m_out["mm"],
        t_mi=m_out["mi"],
        t_md=m_out["md"],
        t_im=i_out["im"],
        t_ii=i_out["ii"],
        t_dm=d_out["dm"],
        t_dd=d_out["dd"],
        begin_to_match=begin_to_match,
        match_to_end=match_to_end,
    )


def viterbi_score(hmm: ProfileHmm, seq: Sequence) -> int:
    """Integer Viterbi score of ``seq`` against ``hmm`` (local mode).

    This is the reference implementation of the ``P7Viterbi`` kernel the
    paper identifies as >50% of Hmmer runtime; the mini-ISA version in
    :mod:`repro.kernels.viterbi` must produce the identical score.
    """
    if seq.alphabet != hmm.alphabet:
        raise HmmError("sequence alphabet does not match the model")
    codes = seq.codes
    n = len(codes)
    if n == 0:
        raise HmmError("cannot score an empty sequence")
    length = hmm.length
    neg = NEG_INF_SCORE

    m_prev = [neg] * length
    i_prev = [neg] * length
    d_prev = [neg] * length
    best = neg
    for i in range(n):
        emit_m = hmm.match_scores[:, codes[i]]
        emit_i = hmm.insert_scores[:, codes[i]]
        m_cur = [neg] * length
        i_cur = [neg] * length
        d_cur = [neg] * length
        for k in range(length):
            # Match state: from begin (local entry) or position k-1.
            score = int(hmm.begin_to_match[k])
            if k > 0:
                via_m = m_prev[k - 1] + int(hmm.t_mm[k - 1])
                via_i = i_prev[k - 1] + int(hmm.t_im[k - 1])
                via_d = d_prev[k - 1] + int(hmm.t_dm[k - 1])
                if via_m > score:
                    score = via_m
                if via_i > score:
                    score = via_i
                if via_d > score:
                    score = via_d
            m_cur[k] = score + int(emit_m[k])
            # Insert state: stay at position k.
            via_m = m_prev[k] + int(hmm.t_mi[k])
            via_i = i_prev[k] + int(hmm.t_ii[k])
            i_cur[k] = max(via_m, via_i) + int(emit_i[k])
            # Delete state: within the current row.
            if k > 0:
                via_m = m_cur[k - 1] + int(hmm.t_md[k - 1])
                via_d = d_cur[k - 1] + int(hmm.t_dd[k - 1])
                d_cur[k] = max(via_m, via_d)
        for k in range(length):
            exit_score = m_cur[k] + int(hmm.match_to_end[k])
            if exit_score > best:
                best = exit_score
        m_prev, i_prev, d_prev = m_cur, i_cur, d_cur
    return best


@dataclass(frozen=True)
class ViterbiAlignment:
    """The best state path through the model.

    ``path`` lists ``(state, position, residue_index)`` triples in
    order: state is ``"M"``/``"I"``/``"D"``, position is the model
    position (0-based), and residue_index is the 0-based sequence index
    consumed (None for delete states).
    """

    score: int
    path: tuple[tuple[str, int, int | None], ...]

    @property
    def matched_positions(self) -> int:
        return sum(1 for state, _k, _i in self.path if state == "M")


def viterbi_align(hmm: ProfileHmm, seq: Sequence) -> ViterbiAlignment:
    """Viterbi with traceback; the score equals :func:`viterbi_score`.

    Local on both the model (uniform entry/exit) and the sequence (the
    alignment may start and end at any residue).
    """
    if seq.alphabet != hmm.alphabet:
        raise HmmError("sequence alphabet does not match the model")
    codes = seq.codes
    n = len(codes)
    if n == 0:
        raise HmmError("cannot align an empty sequence")
    length = hmm.length
    neg = NEG_INF_SCORE

    # Full matrices with backpointers: (prev_state, prev_i, prev_k).
    m = [[neg] * length for _ in range(n)]
    i_mat = [[neg] * length for _ in range(n)]
    d = [[neg] * length for _ in range(n)]
    back: dict[tuple[str, int, int], tuple[str, int, int] | None] = {}

    best = neg
    best_cell: tuple[int, int] | None = None
    for i in range(n):
        emit_m = hmm.match_scores[:, codes[i]]
        emit_i = hmm.insert_scores[:, codes[i]]
        for k in range(length):
            # Match.
            score, origin = int(hmm.begin_to_match[k]), None
            if i > 0 and k > 0:
                candidates = (
                    (m[i - 1][k - 1] + int(hmm.t_mm[k - 1]),
                     ("M", i - 1, k - 1)),
                    (i_mat[i - 1][k - 1] + int(hmm.t_im[k - 1]),
                     ("I", i - 1, k - 1)),
                    (d[i - 1][k - 1] + int(hmm.t_dm[k - 1]),
                     ("D", i - 1, k - 1)),
                )
                for value, source in candidates:
                    if value > score:
                        score, origin = value, source
            m[i][k] = score + int(emit_m[k])
            back[("M", i, k)] = origin
            # Insert.
            if i > 0:
                via_m = m[i - 1][k] + int(hmm.t_mi[k])
                via_i = i_mat[i - 1][k] + int(hmm.t_ii[k])
                if via_m >= via_i:
                    i_mat[i][k] = via_m + int(emit_i[k])
                    back[("I", i, k)] = ("M", i - 1, k)
                else:
                    i_mat[i][k] = via_i + int(emit_i[k])
                    back[("I", i, k)] = ("I", i - 1, k)
            # Delete.
            if k > 0:
                via_m = m[i][k - 1] + int(hmm.t_md[k - 1])
                via_d = d[i][k - 1] + int(hmm.t_dd[k - 1])
                if via_m >= via_d:
                    d[i][k] = via_m
                    back[("D", i, k)] = ("M", i, k - 1)
                else:
                    d[i][k] = via_d
                    back[("D", i, k)] = ("D", i, k - 1)
        for k in range(length):
            exit_score = m[i][k] + int(hmm.match_to_end[k])
            if exit_score > best:
                best = exit_score
                best_cell = (i, k)

    assert best_cell is not None
    path: list[tuple[str, int, int | None]] = []
    cursor: tuple[str, int, int] | None = ("M", *best_cell)
    while cursor is not None:
        state, i, k = cursor
        path.append((state, k, None if state == "D" else i))
        cursor = back.get(cursor)
    path.reverse()
    return ViterbiAlignment(score=int(best), path=tuple(path))


def path_score(
    hmm: ProfileHmm, seq: Sequence, path: tuple[tuple[str, int, int | None], ...]
) -> int:
    """Recompute the score of an explicit state path (for validation)."""
    if not path:
        raise HmmError("empty path")
    codes = seq.codes
    first_state, first_k, _ = path[0]
    if first_state != "M":
        raise HmmError("paths must start in a match state")
    total = int(hmm.begin_to_match[first_k])
    for index, (state, k, residue) in enumerate(path):
        if state == "M":
            total += int(hmm.match_scores[k, codes[residue]])
        elif state == "I":
            total += int(hmm.insert_scores[k, codes[residue]])
        if index + 1 < len(path):
            next_state, next_k, _ = path[index + 1]
            key = (state, next_state)
            if key == ("M", "M"):
                total += int(hmm.t_mm[k])
            elif key == ("M", "I"):
                total += int(hmm.t_mi[k])
            elif key == ("M", "D"):
                total += int(hmm.t_md[k])
            elif key == ("I", "M"):
                total += int(hmm.t_im[k])
            elif key == ("I", "I"):
                total += int(hmm.t_ii[k])
            elif key == ("D", "M"):
                total += int(hmm.t_dm[k])
            elif key == ("D", "D"):
                total += int(hmm.t_dd[k])
            else:
                raise HmmError(f"illegal transition {key}")
            del next_k
    last_state, last_k, _ = path[-1]
    if last_state != "M":
        raise HmmError("paths must end in a match state")
    total += int(hmm.match_to_end[last_k])
    return total


def forward_score(hmm: ProfileHmm, seq: Sequence) -> float:
    """Log-space Forward score (nats) of ``seq`` against ``hmm``.

    The Forward algorithm sums over paths instead of maximising; Hmmer
    uses it as the alternative scorer mentioned in §II. Computed in
    floating point from the integer score tables.
    """
    if seq.alphabet != hmm.alphabet:
        raise HmmError("sequence alphabet does not match the model")
    codes = seq.codes
    if not codes:
        raise HmmError("cannot score an empty sequence")
    length = hmm.length
    scale = float(SCALE)

    def logaddexp(a: float, b: float) -> float:
        return float(np.logaddexp(a, b))

    neg = -math.inf
    m_prev = [neg] * length
    i_prev = [neg] * length
    d_prev = [neg] * length
    total = neg

    def to_nats(value: int) -> float:
        return neg if value <= NEG_INF_SCORE // 2 else value / scale

    for code in codes:
        m_cur = [neg] * length
        i_cur = [neg] * length
        d_cur = [neg] * length
        for k in range(length):
            acc = to_nats(int(hmm.begin_to_match[k]))
            if k > 0:
                acc = logaddexp(acc, m_prev[k - 1] + to_nats(int(hmm.t_mm[k - 1])))
                acc = logaddexp(acc, i_prev[k - 1] + to_nats(int(hmm.t_im[k - 1])))
                acc = logaddexp(acc, d_prev[k - 1] + to_nats(int(hmm.t_dm[k - 1])))
            m_cur[k] = acc + to_nats(int(hmm.match_scores[k, code]))
            acc_i = logaddexp(
                m_prev[k] + to_nats(int(hmm.t_mi[k])),
                i_prev[k] + to_nats(int(hmm.t_ii[k])),
            )
            i_cur[k] = acc_i + to_nats(int(hmm.insert_scores[k, code]))
            if k > 0:
                d_cur[k] = logaddexp(
                    m_cur[k - 1] + to_nats(int(hmm.t_md[k - 1])),
                    d_cur[k - 1] + to_nats(int(hmm.t_dd[k - 1])),
                )
        for k in range(length):
            total = logaddexp(total, m_cur[k] + to_nats(int(hmm.match_to_end[k])))
        m_prev, i_prev, d_prev = m_cur, i_cur, d_cur
    return total
