"""Substitution matrices and gap penalties.

The alignment kernels score residue pairs through a
:class:`SubstitutionMatrix` — a code-indexed integer matrix tied to an
:class:`~repro.bio.alphabet.Alphabet` — and penalise gaps through
:class:`GapPenalties` using the affine convention of the paper's
pseudo-code: opening a gap costs ``open_`` and every gapped position
(including the first) costs ``extend``.

Provided matrices: ``BLOSUM62`` and ``PAM250`` for protein, and
:func:`dna_matrix` for match/mismatch-scored DNA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.alphabet import DNA, PROTEIN, Alphabet
from repro.errors import ScoringError


@dataclass(frozen=True)
class GapPenalties:
    """Affine gap penalties (both stored as positive costs).

    A gap of length ``L`` costs ``open_ + L * extend``, matching the
    ``-Wg - i*Ws`` initialisation in the paper's Smith–Waterman
    pseudo-code (``open_`` = Wg, ``extend`` = Ws).
    """

    open_: int = 10
    extend: int = 2

    def __post_init__(self) -> None:
        if self.open_ < 0 or self.extend < 0:
            raise ScoringError(
                f"gap penalties must be non-negative, got {self}"
            )

    def cost(self, length: int) -> int:
        """Total cost of a gap of ``length`` residues."""
        if length < 0:
            raise ScoringError(f"gap length must be >= 0, got {length}")
        if length == 0:
            return 0
        return self.open_ + length * self.extend


class SubstitutionMatrix:
    """A symmetric residue-pair scoring matrix over an alphabet.

    Parameters
    ----------
    name:
        Matrix name (``"BLOSUM62"`` ...).
    alphabet:
        The alphabet whose codes index the matrix.
    scores:
        Square ``len(alphabet) x len(alphabet)`` integer array.
    """

    def __init__(self, name: str, alphabet: Alphabet, scores: np.ndarray) -> None:
        scores = np.asarray(scores, dtype=np.int64)
        size = len(alphabet)
        if scores.shape != (size, size):
            raise ScoringError(
                f"matrix {name!r} has shape {scores.shape}, "
                f"expected ({size}, {size})"
            )
        self.name = name
        self.alphabet = alphabet
        self.scores = scores

    def __repr__(self) -> str:
        return f"SubstitutionMatrix({self.name!r}, {self.alphabet!r})"

    def score(self, code_a: int, code_b: int) -> int:
        """Score for the residue pair with integer codes ``(a, b)``."""
        return int(self.scores[code_a, code_b])

    def score_symbols(self, sym_a: str, sym_b: str) -> int:
        """Score for a pair of residue symbols."""
        return self.score(self.alphabet.code(sym_a), self.alphabet.code(sym_b))

    @property
    def max_score(self) -> int:
        """Largest entry (best possible per-residue score)."""
        return int(self.scores.max())

    @property
    def min_score(self) -> int:
        """Smallest entry."""
        return int(self.scores.min())

    def is_symmetric(self) -> bool:
        """True when the matrix is symmetric (all standard ones are)."""
        return bool(np.array_equal(self.scores, self.scores.T))

    @classmethod
    def from_rows(
        cls,
        name: str,
        alphabet: Alphabet,
        order: str,
        rows: str,
        wildcard_score: int = -1,
        stop_score: int = -8,
    ) -> "SubstitutionMatrix":
        """Build a matrix from a whitespace-separated triangular/full table.

        ``order`` lists the residues in row order; ``rows`` holds one line
        per residue with as many integers as its row index + 1 (lower
        triangle) or the full row. Symbols of ``alphabet`` that are not in
        ``order`` get ``wildcard_score`` against everything; the stop
        symbol ``*`` scores ``stop_score`` against everything including
        itself.
        """
        size = len(alphabet)
        scores = np.full((size, size), wildcard_score, dtype=np.int64)
        stop = "*"
        if stop in alphabet.symbols:
            stop_code = alphabet.code(stop)
            scores[stop_code, :] = stop_score
            scores[:, stop_code] = stop_score
        order_codes = [alphabet.code(symbol) for symbol in order]
        lines = [line.split() for line in rows.strip().splitlines()]
        if len(lines) != len(order):
            raise ScoringError(
                f"matrix {name!r}: expected {len(order)} rows, got {len(lines)}"
            )
        for i, parts in enumerate(lines):
            if len(parts) not in (i + 1, len(order)):
                raise ScoringError(
                    f"matrix {name!r}: row {i} has {len(parts)} entries"
                )
            for j, part in enumerate(parts):
                value = int(part)
                scores[order_codes[i], order_codes[j]] = value
                scores[order_codes[j], order_codes[i]] = value
        return cls(name, alphabet, scores)


_BLOSUM62_ORDER = "ARNDCQEGHILKMFPSTWYV"
_BLOSUM62_ROWS = """
4
-1 5
-2 0 6
-2 -2 1 6
0 -3 -3 -3 9
-1 1 0 0 -3 5
-1 0 0 2 -4 2 5
0 -2 0 -1 -3 -2 -2 6
-2 0 1 -1 -3 0 0 -2 8
-1 -3 -3 -3 -1 -3 -3 -4 -3 4
-1 -2 -3 -4 -1 -2 -3 -4 -3 2 4
-1 2 0 -1 -3 1 1 -2 -1 -3 -2 5
-1 -1 -2 -3 -1 0 -2 -3 -2 1 2 -1 5
-2 -3 -3 -3 -2 -3 -3 -3 -1 0 0 -3 0 6
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4 7
1 -1 1 0 -1 0 0 0 -1 -2 -2 0 -1 -2 -1 4
0 -1 0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1 1 5
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1 1 -4 -3 -2 11
-2 -2 -2 -3 -2 -1 -2 -3 2 -1 -1 -2 -1 3 -3 -2 -2 2 7
0 -3 -3 -3 -1 -2 -2 -3 -3 3 1 -2 1 -1 -2 -2 0 -3 -1 4
"""

_PAM250_ORDER = "ARNDCQEGHILKMFPSTWYV"
_PAM250_ROWS = """
2
-2 6
0 0 2
0 -1 2 4
-2 -4 -4 -5 12
0 1 1 2 -5 4
0 -1 1 3 -5 2 4
1 -3 0 1 -3 -1 0 5
-1 2 2 1 -3 3 1 -2 6
-1 -2 -2 -2 -2 -2 -2 -3 -2 5
-2 -3 -3 -4 -6 -2 -3 -4 -2 2 6
-1 3 1 0 -5 1 0 -2 0 -2 -3 5
-1 0 -2 -3 -5 -1 -2 -3 -2 2 4 0 6
-3 -4 -3 -6 -4 -5 -5 -5 -2 1 2 -5 0 9
1 0 0 -1 -3 0 -1 0 0 -2 -3 -1 -2 -5 6
1 0 1 0 0 -1 0 1 -1 -1 -3 0 -2 -3 1 2
1 -1 0 0 -2 -1 0 0 -1 0 -2 0 -1 -3 0 1 3
-6 2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4 0 -6 -2 -5 17
-3 -4 -2 -4 0 -4 -4 -5 0 -1 -1 -4 -2 7 -5 -3 -3 0 10
0 -2 -2 -2 -2 -2 -2 -1 -2 4 2 -2 2 -1 -1 -1 0 -6 -2 4
"""

BLOSUM62 = SubstitutionMatrix.from_rows(
    "BLOSUM62", PROTEIN, _BLOSUM62_ORDER, _BLOSUM62_ROWS
)
PAM250 = SubstitutionMatrix.from_rows(
    "PAM250", PROTEIN, _PAM250_ORDER, _PAM250_ROWS
)


def dna_matrix(match: int = 5, mismatch: int = -4) -> SubstitutionMatrix:
    """Match/mismatch matrix for DNA; ``N`` scores 0 against everything."""
    if match <= 0:
        raise ScoringError(f"match score must be positive, got {match}")
    if mismatch >= 0:
        raise ScoringError(f"mismatch score must be negative, got {mismatch}")
    size = len(DNA)
    scores = np.full((size, size), mismatch, dtype=np.int64)
    np.fill_diagonal(scores, match)
    n_code = DNA.code("N")
    scores[n_code, :] = 0
    scores[:, n_code] = 0
    return SubstitutionMatrix(f"DNA({match},{mismatch})", DNA, scores)


def default_matrix(alphabet: Alphabet) -> SubstitutionMatrix:
    """BLOSUM62 for protein, +5/-4 for DNA."""
    if alphabet == PROTEIN:
        return BLOSUM62
    if alphabet == DNA:
        return dna_matrix()
    raise ScoringError(f"no default matrix for alphabet {alphabet!r}")
