"""Synthetic BioPerf-like workload generation.

BioPerf ships class A/B/C input datasets per application (the paper uses
class C). Those datasets are derived from SwissProt and Pfam, which we do
not have offline — so this module generates statistically similar
synthetic inputs: protein families produced by mutating a common ancestor
at controlled rates, plus unrelated background sequences. What the
microarchitectural study needs from the inputs — realistic residue
composition and *value-unpredictable* dynamic-programming score traffic —
is preserved by construction.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bio.alphabet import PROTEIN, Alphabet
from repro.bio.sequence import Sequence
from repro.bio.statistics import background_frequencies
from repro.errors import WorkloadError

#: Input-class scale factors, loosely mirroring BioPerf's A/B/C tiers.
#: Class D is our genome-scale extension: inputs (and the traces they
#: induce) far beyond what a monolithic in-memory run wants to hold,
#: exercised through the streaming pipeline (``repro.perf.stream``).
CLASS_SCALES = {"A": 0.25, "B": 0.5, "C": 1.0, "D": 4.0}


@dataclass(frozen=True)
class WorkloadSpec:
    """Sizes of one application's synthetic input set."""

    query_length: int
    database_sequences: int
    database_length: int
    family_size: int = 0
    mutation_rate: float = 0.3


#: Per-application class-C input shapes. Fasta's input is more than twice
#: the length of Clustalw's, as §VI notes.
CLASS_C_SPECS = {
    "blast": WorkloadSpec(query_length=220, database_sequences=60,
                          database_length=240, family_size=12,
                          mutation_rate=0.35),
    "clustalw": WorkloadSpec(query_length=180, database_sequences=16,
                             database_length=180, family_size=16,
                             mutation_rate=0.30),
    "fasta": WorkloadSpec(query_length=420, database_sequences=40,
                          database_length=420, family_size=10,
                          mutation_rate=0.35),
    "hmmer": WorkloadSpec(query_length=160, database_sequences=24,
                          database_length=150, family_size=10,
                          mutation_rate=0.25),
}


def _residue_sampler(alphabet: Alphabet, rng: random.Random):
    """Return a zero-argument callable sampling background residues."""
    freqs = background_frequencies(alphabet)
    symbols = [alphabet.symbol(code) for code in range(len(alphabet))]
    weighted = [
        (symbol, freq) for symbol, freq in zip(symbols, freqs) if freq > 0
    ]
    choices = [symbol for symbol, _ in weighted]
    weights = [freq for _, freq in weighted]

    def sample() -> str:
        return rng.choices(choices, weights)[0]

    return sample


def random_sequence(
    seq_id: str,
    length: int,
    alphabet: Alphabet = PROTEIN,
    seed: int | random.Random = 0,
) -> Sequence:
    """One background-composition random sequence."""
    if length < 1:
        raise WorkloadError(f"length must be >= 1, got {length}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    sample = _residue_sampler(alphabet, rng)
    return Sequence(seq_id, "".join(sample() for _ in range(length)), alphabet)


def mutate(
    parent: Sequence,
    seq_id: str,
    mutation_rate: float,
    indel_rate: float = 0.03,
    rng: random.Random | None = None,
) -> Sequence:
    """Derive a child sequence by point mutation plus short indels."""
    if not 0.0 <= mutation_rate <= 1.0:
        raise WorkloadError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
    rng = rng or random.Random(0)
    sample = _residue_sampler(parent.alphabet, rng)
    out: list[str] = []
    for symbol in parent.residues:
        roll = rng.random()
        if roll < indel_rate / 2:
            continue  # deletion
        if roll < indel_rate:
            out.append(sample())  # insertion before the residue
        if rng.random() < mutation_rate:
            out.append(sample())
        else:
            out.append(symbol)
    if not out:
        out.append(sample())
    return Sequence(seq_id, "".join(out), parent.alphabet)


def make_family(
    name: str,
    size: int,
    length: int,
    mutation_rate: float,
    alphabet: Alphabet = PROTEIN,
    seed: int = 0,
) -> list[Sequence]:
    """A family of related sequences mutated from one ancestor."""
    if size < 1:
        raise WorkloadError(f"family size must be >= 1, got {size}")
    rng = random.Random(seed)
    ancestor = random_sequence(f"{name}_anc", length, alphabet, rng)
    members = [
        mutate(ancestor, f"{name}_{i}", mutation_rate, rng=rng)
        for i in range(size)
    ]
    return members


@dataclass(frozen=True)
class BlastInput:
    query: Sequence
    database: list[Sequence]


@dataclass(frozen=True)
class ClustalwInput:
    sequences: list[Sequence]


@dataclass(frozen=True)
class FastaInput:
    query: Sequence
    database: list[Sequence]


@dataclass(frozen=True)
class HmmerInput:
    query: Sequence
    families: list[list[Sequence]]


def _scaled(spec: WorkloadSpec, input_class: str) -> WorkloadSpec:
    try:
        scale = CLASS_SCALES[input_class]
    except KeyError:
        raise WorkloadError(
            f"unknown input class {input_class!r}; expected one of "
            f"{sorted(CLASS_SCALES)}"
        ) from None
    return WorkloadSpec(
        query_length=max(20, int(spec.query_length * scale)),
        database_sequences=max(4, int(spec.database_sequences * scale)),
        database_length=max(20, int(spec.database_length * scale)),
        family_size=max(4, int(spec.family_size * scale)),
        mutation_rate=spec.mutation_rate,
    )


def blast_input(input_class: str = "C", seed: int = 7) -> BlastInput:
    """Query + mixed database (one related family + background noise)."""
    spec = _scaled(CLASS_C_SPECS["blast"], input_class)
    rng = random.Random(seed)
    family = make_family(
        "fam", spec.family_size, spec.database_length,
        spec.mutation_rate, seed=seed,
    )
    query = mutate(family[0], "query", spec.mutation_rate, rng=rng)
    query = Sequence("query", query.residues[: spec.query_length], PROTEIN)
    noise = [
        random_sequence(f"bg_{i}", spec.database_length, PROTEIN, rng)
        for i in range(spec.database_sequences - spec.family_size)
    ]
    return BlastInput(query=query, database=family + noise)


def clustalw_input(input_class: str = "C", seed: int = 11) -> ClustalwInput:
    """One family to align (Clustalw aligns everything it is given)."""
    spec = _scaled(CLASS_C_SPECS["clustalw"], input_class)
    family = make_family(
        "seq", spec.family_size, spec.query_length, spec.mutation_rate,
        seed=seed,
    )
    return ClustalwInput(sequences=family)


def fasta_input(input_class: str = "C", seed: int = 13) -> FastaInput:
    """Long query + database; Fasta's input is the longest of the four."""
    spec = _scaled(CLASS_C_SPECS["fasta"], input_class)
    rng = random.Random(seed)
    family = make_family(
        "fam", spec.family_size, spec.database_length,
        spec.mutation_rate, seed=seed,
    )
    query = mutate(family[0], "query", spec.mutation_rate, rng=rng)
    noise = [
        random_sequence(f"bg_{i}", spec.database_length, PROTEIN, rng)
        for i in range(spec.database_sequences - spec.family_size)
    ]
    return FastaInput(query=query, database=family + noise)


#: Skewed codon usage for synthetic "coding" DNA: a handful of codons
#: carry most of the probability mass, like real prokaryotic genes.
_BIASED_CODONS = (
    "GCT", "GAA", "AAA", "CTG", "GGT", "GAT", "GTT", "ATC",
    "CGT", "ACC", "TTC", "CAG",
)


@dataclass(frozen=True)
class GenomeInput:
    """A synthetic genome with known embedded genes."""

    genome: "Sequence"
    genes: list[str]  # coding sequences, for training / truth
    gene_spans: list[tuple[int, int]]  # forward-strand offsets


def make_genome(
    n_genes: int = 6,
    gene_codons: int = 60,
    spacer: int = 120,
    seed: int = 23,
) -> GenomeInput:
    """Generate a genome: biased-codon genes separated by random DNA.

    Genes start with ATG, avoid in-frame stops, and end with TAA; the
    intergenic spacers are uniform random DNA. This gives a
    gene-finding workload where composition (not just ORF length)
    separates coding from background — what Glimmer's IMM exploits.
    """
    from repro.bio.alphabet import DNA

    if n_genes < 1 or gene_codons < 4:
        raise WorkloadError("need at least one gene of several codons")
    rng = random.Random(seed)
    stops = {"TAA", "TAG", "TGA"}

    def random_dna(length: int) -> str:
        return "".join(rng.choice("ACGT") for _ in range(length))

    parts: list[str] = []
    genes: list[str] = []
    spans: list[tuple[int, int]] = []
    cursor = 0
    for _ in range(n_genes):
        gap = random_dna(spacer + rng.randrange(40))
        parts.append(gap)
        cursor += len(gap)
        body = []
        for _ in range(gene_codons - 2):
            codon = rng.choice(_BIASED_CODONS)
            while codon in stops:  # defensive; the table has no stops
                codon = rng.choice(_BIASED_CODONS)
            body.append(codon)
        gene = "ATG" + "".join(body) + "TAA"
        genes.append(gene)
        spans.append((cursor, cursor + len(gene)))
        parts.append(gene)
        cursor += len(gene)
    parts.append(random_dna(spacer))
    return GenomeInput(
        genome=Sequence("genome", "".join(parts), DNA),
        genes=genes,
        gene_spans=spans,
    )


def hmmer_input(input_class: str = "C", seed: int = 17) -> HmmerInput:
    """Query sequence + several families to build a model database from."""
    spec = _scaled(CLASS_C_SPECS["hmmer"], input_class)
    rng = random.Random(seed)
    n_families = max(3, spec.database_sequences // spec.family_size)
    families = [
        make_family(
            f"fam{i}", spec.family_size, spec.database_length,
            spec.mutation_rate, seed=seed + i,
        )
        for i in range(n_families)
    ]
    query = mutate(families[0][0], "query", spec.mutation_rate, rng=rng)
    return HmmerInput(query=query, families=families)
