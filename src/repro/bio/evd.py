"""Extreme-value statistics for profile-HMM scores (HMMER-style).

HMMER calibrates each model by scoring random sequences and fitting a
Gumbel (type-I extreme value) distribution to the scores; hits are
then reported with E-values instead of raw bits. This module does the
same over :func:`repro.bio.hmm.viterbi_score`: :func:`calibrate`
simulates the null distribution, scipy fits the Gumbel, and
:class:`EvdCalibration` converts scores to P/E-values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bio.hmm import ProfileHmm, viterbi_score
from repro.bio.hmmer import HmmHit
from repro.bio.sequence import Sequence
from repro.bio.workloads import random_sequence
from repro.errors import HmmError


@dataclass(frozen=True)
class EvdCalibration:
    """A fitted Gumbel null distribution for one model.

    ``location``/``scale`` are in the integer fixed-point score units of
    :mod:`repro.bio.hmm`.
    """

    model_name: str
    location: float
    scale: float
    samples: int

    def pvalue(self, score: int) -> float:
        """P(null score >= ``score``) under the fitted Gumbel."""
        z = (score - self.location) / self.scale
        # Survival function of the Gumbel: 1 - exp(-exp(-z)), computed
        # stably for large z.
        inner = math.exp(-z) if z > -30 else float("inf")
        if inner < 1e-12:
            return inner  # 1 - exp(-x) ~ x for tiny x
        return 1.0 - math.exp(-inner)

    def evalue(self, score: int, database_size: int) -> float:
        """Expected chance hits at least this good in a database scan."""
        if database_size < 1:
            raise HmmError("database_size must be >= 1")
        return database_size * self.pvalue(score)


def calibrate(
    hmm: ProfileHmm,
    sequence_length: int | None = None,
    samples: int = 200,
    seed: int = 0,
) -> EvdCalibration:
    """Fit the null-score Gumbel for ``hmm``.

    ``sequence_length`` defaults to the model length (HMMER calibrates
    near the model's own scale); ``samples`` random sequences are
    scored.
    """
    # scipy is an optional dependency: only this fit needs it.
    from scipy.stats import gumbel_r

    if samples < 20:
        raise HmmError("need at least 20 samples for a stable fit")
    length = sequence_length or hmm.length
    scores = [
        viterbi_score(
            hmm,
            random_sequence(f"null{i}", length, hmm.alphabet,
                            seed=seed * 100_003 + i),
        )
        for i in range(samples)
    ]
    location, scale = gumbel_r.fit(scores)
    if scale <= 0:
        raise HmmError("degenerate EVD fit (zero scale)")
    return EvdCalibration(
        model_name=hmm.name,
        location=float(location),
        scale=float(scale),
        samples=samples,
    )


@dataclass(frozen=True)
class CalibratedHit:
    """An hmmsearch hit with EVD-based significance."""

    hit: HmmHit
    pvalue: float
    evalue: float


def hmmsearch_calibrated(
    hmm: ProfileHmm,
    database: list[Sequence],
    calibration: EvdCalibration | None = None,
    max_evalue: float = 10.0,
    seed: int = 0,
) -> list[CalibratedHit]:
    """Scan ``database`` and report hits with E-values.

    A calibration is fitted on the fly when not supplied. Hits with
    E-value above ``max_evalue`` are dropped; results sort by E-value.
    """
    if not database:
        raise HmmError("sequence database is empty")
    if calibration is None:
        calibration = calibrate(hmm, seed=seed)
    results = []
    for seq in database:
        score = viterbi_score(hmm, seq)
        pvalue = calibration.pvalue(score)
        evalue = calibration.evalue(score, len(database))
        if evalue <= max_evalue:
            results.append(
                CalibratedHit(
                    hit=HmmHit(hmm.name, seq.id, score),
                    pvalue=pvalue,
                    evalue=evalue,
                )
            )
    results.sort(key=lambda item: item.evalue)
    return results
