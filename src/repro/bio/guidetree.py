"""Guide trees for progressive multiple alignment.

Clustalw's second stage clusters the pairwise distance matrix into a
binary guide tree that orders the progressive alignment. Both classic
agglomerative methods are provided: UPGMA and neighbour joining.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AlignmentError


@dataclass
class TreeNode:
    """A node of a rooted binary guide tree.

    Leaves carry the index of a sequence; internal nodes carry their two
    children and the height/branch bookkeeping of the clustering method.
    """

    index: int | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    height: float = 0.0
    size: int = 1
    leaves: tuple[int, ...] = field(default_factory=tuple)

    @property
    def is_leaf(self) -> bool:
        return self.index is not None

    def __post_init__(self) -> None:
        if self.index is not None and not self.leaves:
            self.leaves = (self.index,)

    def newick(self) -> str:
        """Serialise to Newick (leaf labels are sequence indices)."""
        if self.is_leaf:
            return str(self.index)
        assert self.left is not None and self.right is not None
        return f"({self.left.newick()},{self.right.newick()})"

    def postorder(self):
        """Yield nodes children-first (the progressive-alignment order)."""
        if self.left is not None:
            yield from self.left.postorder()
        if self.right is not None:
            yield from self.right.postorder()
        yield self


def _check_distances(distances: np.ndarray) -> np.ndarray:
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise AlignmentError("distance matrix must be square")
    if distances.shape[0] < 2:
        raise AlignmentError("need at least two sequences to build a tree")
    if not np.allclose(distances, distances.T):
        raise AlignmentError("distance matrix must be symmetric")
    return distances


def upgma(distances: np.ndarray) -> TreeNode:
    """Build a UPGMA tree from a symmetric distance matrix.

    Repeatedly merges the closest pair of clusters; the inter-cluster
    distance is the size-weighted average of member distances.
    """
    distances = _check_distances(distances)
    n = distances.shape[0]
    nodes: dict[int, TreeNode] = {i: TreeNode(index=i) for i in range(n)}
    work = distances.copy()
    active = list(range(n))
    next_id = n
    matrix: dict[tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            matrix[(i, j)] = float(work[i, j])

    def get(a: int, b: int) -> float:
        return matrix[(a, b) if a < b else (b, a)]

    while len(active) > 1:
        best_pair = min(
            (
                (get(a, b), (a, b))
                for idx, a in enumerate(active)
                for b in active[idx + 1 :]
            ),
            key=lambda item: item[0],
        )[1]
        a, b = best_pair
        node_a, node_b = nodes[a], nodes[b]
        merged = TreeNode(
            left=node_a,
            right=node_b,
            height=get(a, b) / 2.0,
            size=node_a.size + node_b.size,
            leaves=node_a.leaves + node_b.leaves,
        )
        for other in active:
            if other in (a, b):
                continue
            new_distance = (
                get(a, other) * node_a.size + get(b, other) * node_b.size
            ) / merged.size
            matrix[(min(other, next_id), max(other, next_id))] = new_distance
        active = [x for x in active if x not in (a, b)] + [next_id]
        nodes[next_id] = merged
        next_id += 1
    return nodes[active[0]]


def neighbour_joining(distances: np.ndarray) -> TreeNode:
    """Build a (rooted-at-last-join) neighbour-joining tree.

    Classic Saitou–Nei NJ; the final three-way join is resolved by
    merging the last two nodes under a root, which is all the progressive
    aligner needs (it only consumes the merge order).
    """
    distances = _check_distances(distances)
    n = distances.shape[0]
    nodes: dict[int, TreeNode] = {i: TreeNode(index=i) for i in range(n)}
    matrix: dict[tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            matrix[(i, j)] = float(distances[i, j])
    active = list(range(n))
    next_id = n

    def get(a: int, b: int) -> float:
        if a == b:
            return 0.0
        return matrix[(a, b) if a < b else (b, a)]

    while len(active) > 2:
        count = len(active)
        totals = {a: sum(get(a, b) for b in active) for a in active}
        best_q, best_pair = None, None
        for idx, a in enumerate(active):
            for b in active[idx + 1 :]:
                q = (count - 2) * get(a, b) - totals[a] - totals[b]
                if best_q is None or q < best_q:
                    best_q, best_pair = q, (a, b)
        assert best_pair is not None
        a, b = best_pair
        node_a, node_b = nodes[a], nodes[b]
        merged = TreeNode(
            left=node_a,
            right=node_b,
            height=max(node_a.height, node_b.height) + get(a, b) / 2.0,
            size=node_a.size + node_b.size,
            leaves=node_a.leaves + node_b.leaves,
        )
        for other in active:
            if other in (a, b):
                continue
            new_distance = (get(a, other) + get(b, other) - get(a, b)) / 2.0
            matrix[(min(other, next_id), max(other, next_id))] = new_distance
        active = [x for x in active if x not in (a, b)] + [next_id]
        nodes[next_id] = merged
        next_id += 1

    a, b = active
    node_a, node_b = nodes[a], nodes[b]
    return TreeNode(
        left=node_a,
        right=node_b,
        height=max(node_a.height, node_b.height) + get(a, b) / 2.0,
        size=node_a.size + node_b.size,
        leaves=node_a.leaves + node_b.leaves,
    )
