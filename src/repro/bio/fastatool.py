"""Fasta-style search: the ktup heuristic and full ssearch.

Two search modes mirror the FASTA package the paper profiles:

* :func:`fasta_search` — the classic ktup pipeline: identical-word hits
  are binned per diagonal (``init1``), compatible diagonal runs are
  chained (``initn``), and the best candidates are rescored with banded
  Smith–Waterman (``opt`` score).
* :func:`ssearch` — exhaustive Smith–Waterman of the query against every
  database sequence. Its inner loop is the ``dropgsw`` kernel that takes
  ~99% of ssearch runtime in the paper's Figure 1.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.bio.banded import banded_local_score
from repro.bio.pairwise import smith_waterman_score
from repro.bio.scoring import GapPenalties, SubstitutionMatrix, default_matrix
from repro.bio.sequence import Sequence
from repro.errors import AlignmentError


@dataclass(frozen=True)
class DiagonalRun:
    """A maximal run of word hits on one diagonal."""

    diagonal: int
    query_start: int
    query_end: int
    score: int


@dataclass(frozen=True)
class FastaHit:
    """Scores for one database sequence, FASTA-style.

    ``init1`` is the best single diagonal-run score, ``initn`` the best
    chained score, ``opt`` the banded Smith–Waterman rescore.
    """

    subject: Sequence
    init1: int
    initn: int
    opt: int


@dataclass(frozen=True)
class SsearchHit:
    """Full Smith–Waterman score for one database sequence."""

    subject: Sequence
    score: int


def _diagonal_runs(
    query: Sequence,
    subject: Sequence,
    ktup: int,
    matrix: SubstitutionMatrix,
    max_gap: int = 16,
) -> list[DiagonalRun]:
    """Find maximal scored word-hit runs per diagonal.

    Word hits closer than ``max_gap`` on the same diagonal join one run;
    each hit contributes its substitution-matrix self-score.
    """
    words: dict[str, list[int]] = defaultdict(list)
    for offset, word in subject.kmers(ktup):
        words[word].append(offset)
    per_diag: dict[int, list[tuple[int, int]]] = defaultdict(list)
    scores = matrix.scores
    codes_q = query.codes
    for q_offset, word in query.kmers(ktup):
        hit_score = sum(
            int(scores[codes_q[q_offset + k], codes_q[q_offset + k]])
            for k in range(ktup)
        )
        for s_offset in words.get(word, ()):
            per_diag[s_offset - q_offset].append((q_offset, hit_score))

    runs: list[DiagonalRun] = []
    for diagonal, hits in per_diag.items():
        hits.sort()
        run_start = hits[0][0]
        run_end = run_start + ktup
        run_score = hits[0][1]
        for q_offset, hit_score in hits[1:]:
            if q_offset - run_end <= max_gap:
                run_score += hit_score
                run_end = max(run_end, q_offset + ktup)
            else:
                runs.append(
                    DiagonalRun(diagonal, run_start, run_end, run_score)
                )
                run_start, run_end, run_score = (
                    q_offset,
                    q_offset + ktup,
                    hit_score,
                )
        runs.append(DiagonalRun(diagonal, run_start, run_end, run_score))
    return runs


def _chain_runs(runs: list[DiagonalRun], join_penalty: int) -> int:
    """Best chained score over compatible runs (FASTA's ``initn``).

    Runs are chainable when the second starts after the first ends in
    query coordinates; each join costs ``join_penalty``. Solved by a
    simple DP over runs sorted by query start.
    """
    if not runs:
        return 0
    ordered = sorted(runs, key=lambda run: run.query_start)
    best_ending = [run.score for run in ordered]
    for i, run in enumerate(ordered):
        for j in range(i):
            if ordered[j].query_end <= run.query_start:
                candidate = best_ending[j] + run.score - join_penalty
                if candidate > best_ending[i]:
                    best_ending[i] = candidate
    return max(best_ending)


def fasta_search(
    query: Sequence,
    database: list[Sequence],
    ktup: int = 2,
    matrix: SubstitutionMatrix | None = None,
    gaps: GapPenalties = GapPenalties(12, 2),
    join_penalty: int = 20,
    bandwidth: int = 16,
    top_n: int = 20,
) -> list[FastaHit]:
    """Run the ktup heuristic against ``database``.

    The ``top_n`` candidates by ``initn`` are rescored with banded
    Smith–Waterman around their best diagonal (``opt`` score); hits are
    returned sorted by ``opt`` descending.
    """
    if not database:
        raise AlignmentError("database must contain sequences")
    if matrix is None:
        matrix = default_matrix(query.alphabet)
    scored: list[tuple[int, int, int, Sequence]] = []
    for subject in database:
        runs = _diagonal_runs(query, subject, ktup, matrix)
        init1 = max((run.score for run in runs), default=0)
        initn = _chain_runs(runs, join_penalty)
        best_diag = 0
        if runs:
            best_diag = max(runs, key=lambda run: run.score).diagonal
        scored.append((initn, init1, best_diag, subject))

    scored.sort(key=lambda item: -item[0])
    hits: list[FastaHit] = []
    for initn, init1, best_diag, subject in scored[:top_n]:
        if initn <= 0:
            continue
        opt = banded_local_score(
            query, subject, best_diag, bandwidth, matrix, gaps
        )
        hits.append(FastaHit(subject, init1=init1, initn=initn, opt=opt))
    hits.sort(key=lambda hit: -hit.opt)
    return hits


def ssearch(
    query: Sequence,
    database: list[Sequence],
    matrix: SubstitutionMatrix | None = None,
    gaps: GapPenalties = GapPenalties(12, 2),
) -> list[SsearchHit]:
    """Exhaustive Smith–Waterman search (FASTA's ``ssearch34_t``).

    Every database sequence is scored with the full ``dropgsw`` kernel;
    results are sorted by score descending.
    """
    if not database:
        raise AlignmentError("database must contain sequences")
    if matrix is None:
        matrix = default_matrix(query.alphabet)
    hits = [
        SsearchHit(subject, smith_waterman_score(query, subject, matrix, gaps))
        for subject in database
    ]
    hits.sort(key=lambda hit: -hit.score)
    return hits
