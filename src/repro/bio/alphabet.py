"""Biological alphabets.

An :class:`Alphabet` maps symbols (single characters) to small integer
codes. Integer-coded sequences are what the alignment kernels and the
mini-ISA interpreter operate on, so encoding/decoding lives here, in one
place.

Two standard alphabets are provided as module-level singletons:

``DNA``
    The four nucleotides plus the ambiguity symbol ``N``.
``PROTEIN``
    The twenty standard amino acids plus ``X`` (unknown) and ``*`` (stop).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import AlphabetError


class Alphabet:
    """An ordered set of symbols with a stable symbol <-> code mapping.

    Parameters
    ----------
    name:
        Human-readable name used in error messages and ``repr``.
    symbols:
        The symbols in code order: ``symbols[i]`` has code ``i``.
    wildcard:
        Symbol substituted for unknown characters when encoding with
        ``strict=False``. Must be a member of ``symbols``.
    """

    def __init__(self, name: str, symbols: str, wildcard: str) -> None:
        if len(set(symbols)) != len(symbols):
            raise AlphabetError(f"alphabet {name!r} has duplicate symbols")
        if wildcard not in symbols:
            raise AlphabetError(
                f"wildcard {wildcard!r} is not a symbol of alphabet {name!r}"
            )
        self.name = name
        self.symbols = symbols
        self.wildcard = wildcard
        self._codes = {symbol: code for code, symbol in enumerate(symbols)}

    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._codes

    def __repr__(self) -> str:
        return f"Alphabet({self.name!r}, size={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self.symbols == other.symbols and self.name == other.name

    def __hash__(self) -> int:
        return hash((self.name, self.symbols))

    @property
    def wildcard_code(self) -> int:
        """Integer code of the wildcard symbol."""
        return self._codes[self.wildcard]

    def code(self, symbol: str) -> int:
        """Return the integer code for ``symbol``.

        Raises :class:`AlphabetError` for symbols outside the alphabet.
        """
        try:
            return self._codes[symbol]
        except KeyError:
            raise AlphabetError(
                f"symbol {symbol!r} is not in alphabet {self.name!r}"
            ) from None

    def symbol(self, code: int) -> str:
        """Return the symbol for integer ``code``."""
        if not 0 <= code < len(self.symbols):
            raise AlphabetError(
                f"code {code} out of range for alphabet {self.name!r}"
            )
        return self.symbols[code]

    def encode(self, text: str, strict: bool = True) -> list[int]:
        """Encode ``text`` into a list of integer codes.

        Lower-case input is accepted and upper-cased first. With
        ``strict=False`` unknown symbols become the wildcard instead of
        raising.
        """
        codes = []
        wildcard_code = self.wildcard_code
        for symbol in text.upper():
            found = self._codes.get(symbol)
            if found is None:
                if strict:
                    raise AlphabetError(
                        f"symbol {symbol!r} is not in alphabet {self.name!r}"
                    )
                found = wildcard_code
            codes.append(found)
        return codes

    def decode(self, codes: Iterable[int]) -> str:
        """Decode integer ``codes`` back into a string."""
        return "".join(self.symbol(code) for code in codes)


DNA = Alphabet("dna", "ACGTN", wildcard="N")
PROTEIN = Alphabet("protein", "ACDEFGHIKLMNPQRSTVWYX*", wildcard="X")


def guess_alphabet(text: str) -> Alphabet:
    """Guess whether ``text`` is DNA or protein.

    A sequence consisting only of ``ACGTN`` (case-insensitive) is treated
    as DNA; anything else that encodes as protein is protein.
    """
    stripped = set(text.upper()) - {"-", "."}
    if stripped <= set(DNA.symbols):
        return DNA
    if stripped <= set(PROTEIN.symbols):
        return PROTEIN
    unknown = sorted(stripped - set(PROTEIN.symbols))
    raise AlphabetError(f"symbols {unknown!r} fit neither DNA nor protein")
