"""repro: reproduction of the IISWC 2007 POWER5 bioinformatics study.

The package splits into:

* :mod:`repro.bio` — the BioPerf sequence-analysis applications;
* :mod:`repro.isa` — a PowerPC-like mini-ISA with ``max``/``isel``;
* :mod:`repro.kernels` — the hot DP kernels written for the mini-ISA;
* :mod:`repro.compiler` — IR + if-conversion (the gcc patch of SIV-B);
* :mod:`repro.uarch` — the POWER5-like trace-driven core model;
* :mod:`repro.perf` — profiling and workload characterisation;
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

__version__ = "0.1.0"
