"""A gprof-like deterministic-enough function profiler.

Used for Figure 1's function-wise runtime breakout: run an application
callable under the profiler and report the top functions by *self*
time, exactly how the paper used gprof on the BioPerf binaries.

Implemented over ``sys.setprofile`` with ``perf_counter`` timing. Only
functions defined inside the ``repro`` package are attributed (library
internals fold into their callers), which keeps the output at the same
granularity as a C-level gprof profile of the original tools.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class FunctionProfile:
    """Timing for one function."""

    name: str
    self_seconds: float
    cumulative_seconds: float
    calls: int

    def share_of(self, total: float) -> float:
        """This function's share of total self time."""
        return self.self_seconds / total if total > 0 else 0.0


@dataclass
class ProfileReport:
    """The result of one profiled run."""

    total_seconds: float
    functions: list[FunctionProfile]

    def top(self, count: int = 4) -> list[FunctionProfile]:
        """The ``count`` most expensive functions by self time."""
        return self.functions[:count]

    def share(self, name: str) -> float:
        """Self-time share of the named function (0 when absent)."""
        for function in self.functions:
            if function.name == name:
                return function.share_of(self.total_seconds)
        return 0.0

    def format(self, count: int = 6) -> str:
        """gprof-flat-profile-like text rendering."""
        lines = [f"{'% time':>7}  {'self(s)':>8}  {'calls':>8}  name"]
        for function in self.top(count):
            lines.append(
                f"{100 * function.share_of(self.total_seconds):6.1f}%  "
                f"{function.self_seconds:8.4f}  {function.calls:8d}  "
                f"{function.name}"
            )
        return "\n".join(lines)


class Profiler:
    """Context-manager profiler attributing self time per function."""

    def __init__(self, package_filter: str = "repro") -> None:
        self._filter = package_filter
        self._stack: list[tuple[str, float, float]] = []
        self._self_time: dict[str, float] = {}
        self._cumulative: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._started = 0.0
        self._total = 0.0

    def _name_of(self, frame) -> str | None:
        module = frame.f_globals.get("__name__", "")
        if not module.startswith(self._filter):
            return None
        name = frame.f_code.co_name
        if name.startswith("<"):
            # Comprehensions/genexprs fold into their caller, the way a
            # C-level profile would never see them as functions.
            return None
        return name

    def _handler(self, frame, event, _arg):
        now = time.perf_counter()
        if event == "call":
            name = self._name_of(frame)
            if self._stack:
                top_name, entered, child_time = self._stack[-1]
                self._self_time[top_name] = (
                    self._self_time.get(top_name, 0.0) + (now - entered)
                )
                self._stack[-1] = (top_name, now, child_time)
            if name is not None:
                self._stack.append((name, now, now))
                self._calls[name] = self._calls.get(name, 0) + 1
            else:
                # Foreign frame: attribute to the caller (like gprof
                # folding library time into the calling function).
                if self._stack:
                    self._stack.append((self._stack[-1][0], now, now))
                else:
                    self._stack.append(("<other>", now, now))
        elif event == "return":
            if not self._stack:
                return
            name, entered, started = self._stack.pop()
            self._self_time[name] = (
                self._self_time.get(name, 0.0) + (now - entered)
            )
            self._cumulative[name] = (
                self._cumulative.get(name, 0.0) + (now - started)
            )
            if self._stack:
                top_name, _entered, child_time = self._stack[-1]
                self._stack[-1] = (top_name, now, child_time)

    def run(self, callable_, *args, **kwargs):
        """Profile one call; returns ``(value, ProfileReport)``."""
        if self._started:
            raise WorkloadError("profiler already used; create a fresh one")
        self._started = time.perf_counter()
        sys.setprofile(self._handler)
        try:
            value = callable_(*args, **kwargs)
        finally:
            sys.setprofile(None)
        self._total = time.perf_counter() - self._started
        return value, self.report()

    def report(self) -> ProfileReport:
        """Build the sorted report."""
        total_self = sum(self._self_time.values())
        functions = sorted(
            (
                FunctionProfile(
                    name=name,
                    self_seconds=seconds,
                    cumulative_seconds=self._cumulative.get(name, seconds),
                    calls=self._calls.get(name, 0),
                )
                for name, seconds in self._self_time.items()
                if name != "<other>"
            ),
            key=lambda f: -f.self_seconds,
        )
        return ProfileReport(total_seconds=max(total_self, 1e-12),
                             functions=functions)


def profile_call(callable_, *args, **kwargs):
    """One-shot convenience wrapper around :class:`Profiler`."""
    return Profiler().run(callable_, *args, **kwargs)
