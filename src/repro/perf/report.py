"""Plain-text table rendering for experiment output.

Every experiment driver prints its rows through :class:`Table`, so the
benchmark harness reproduces the paper's tables/figures as aligned
ASCII — the same rows/series the paper reports, minus the plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100 * value:.{digits}f}%"


def signed_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a signed percentage string."""
    return f"{100 * value:+.{digits}f}%"


@dataclass
class Table:
    """A fixed-column text table."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> "Table":
        """Append one row (cells are stringified)."""
        if len(cells) != len(self.headers):
            raise WorkloadError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append([str(cell) for cell in cells])
        return self

    def render(self) -> str:
        """Render title, header rule, and aligned rows."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: list[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [self.title, rule, line(self.headers), rule]
        parts.extend(line(row) for row in self.rows)
        parts.append(rule)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
