"""Profiling and whole-application characterisation.

* :mod:`repro.perf.profiler` — gprof-like function profiling (Fig. 1);
* :mod:`repro.perf.apps` — end-to-end application drivers;
* :mod:`repro.perf.characterize` — composite kernel+background workload
  models and the ``characterize()`` entry point every simulation
  experiment uses;
* :mod:`repro.perf.report` — text table rendering.
"""

from repro.perf.apps import APP_PHASES, APPS, AppRunResult, run_app
from repro.perf.characterize import (
    APP_WORKLOADS,
    VARIANTS,
    AppCharacterisation,
    background_trace,
    characterize,
    kernel_trace,
)
from repro.perf.profiler import ProfileReport, Profiler, profile_call
from repro.perf.report import Table, percent, signed_percent
from repro.perf.sweep import DesignPoint, paper_design_space, sweep, sweep_table

__all__ = [
    "APP_PHASES",
    "APPS",
    "AppRunResult",
    "run_app",
    "APP_WORKLOADS",
    "VARIANTS",
    "AppCharacterisation",
    "background_trace",
    "characterize",
    "kernel_trace",
    "ProfileReport",
    "Profiler",
    "profile_call",
    "Table",
    "percent",
    "signed_percent",
    "DesignPoint",
    "paper_design_space",
    "sweep",
    "sweep_table",
]
