"""End-to-end application drivers over the synthetic BioPerf inputs.

Each paper workload is split into ``prepare_*`` (input generation and
any setup the real tool does offline — e.g. Hmmer's models are prebuilt
Pfam files) and ``execute_*`` (the measured run). The Figure 1
experiment profiles only the execute phase, as gprof on the BioPerf
binaries effectively does; the tests assert the paper's headline
profile shape — a single dynamic-programming function dominating each
application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.bio.alphabet import PROTEIN
from repro.bio.blast import BlastDatabase, blastp
from repro.bio.fastatool import ssearch
from repro.bio.hmm import build_hmm
from repro.bio.hmmer import hmmpfam
from repro.bio.msa import clustalw
from repro.bio.workloads import (
    blast_input,
    clustalw_input,
    fasta_input,
    hmmer_input,
)

#: The applications, in the paper's order.
APPS = ("blast", "clustalw", "fasta", "hmmer")

#: Python reference function implementing each app's hot kernel.
KERNEL_REFERENCE_FUNCTIONS = {
    "blast": "xdrop_extend",
    "clustalw": "needleman_wunsch",
    "fasta": "smith_waterman_score",
    "hmmer": "viterbi_score",
}

#: The paper's (Figure 1) names for the same kernels.
KERNEL_PAPER_NAMES = {
    "blast": "SEMI_G_ALIGN_EX",
    "clustalw": "forward_pass",
    "fasta": "dropgsw",
    "hmmer": "P7Viterbi",
}


@dataclass(frozen=True)
class AppRunResult:
    """Coarse outcome of one application run (for sanity checks)."""

    app: str
    work_units: int  # hits / aligned sequences / models scored


def prepare_blast(input_class: str = "A", seed: int = 7):
    """Query + indexed database (index building is setup, like formatdb)."""
    data = blast_input(input_class, seed=seed)
    return data.query, BlastDatabase(data.database)


def execute_blast(prepared) -> AppRunResult:
    query, database = prepared
    hits = blastp(query, database)
    return AppRunResult("blast", len(hits))


def prepare_clustalw(input_class: str = "A", seed: int = 11):
    return clustalw_input(input_class, seed=seed).sequences


def execute_clustalw(prepared) -> AppRunResult:
    msa = clustalw(prepared)
    return AppRunResult("clustalw", len(msa.rows))


def prepare_fasta(input_class: str = "A", seed: int = 13):
    data = fasta_input(input_class, seed=seed)
    return data.query, data.database


def execute_fasta(prepared) -> AppRunResult:
    query, database = prepared
    hits = ssearch(query, database)
    return AppRunResult("fasta", len(hits))


def prepare_hmmer(input_class: str = "A", seed: int = 17):
    """Build the model database (Pfam models are prebuilt in reality)."""
    data = hmmer_input(input_class, seed=seed)
    models = []
    for family in data.families:
        msa = clustalw(family)
        models.append(
            build_hmm(family[0].id.split("_")[0], list(msa.rows), PROTEIN)
        )
    return data.query, models


def execute_hmmer(prepared) -> AppRunResult:
    query, models = prepared
    hits = hmmpfam(query, models)
    return AppRunResult("hmmer", len(hits))


#: (prepare, execute) pairs per application.
APP_PHASES: dict[str, tuple[Callable[..., Any], Callable[[Any], AppRunResult]]] = {
    "blast": (prepare_blast, execute_blast),
    "clustalw": (prepare_clustalw, execute_clustalw),
    "fasta": (prepare_fasta, execute_fasta),
    "hmmer": (prepare_hmmer, execute_hmmer),
}


def run_app(app: str, input_class: str = "A") -> AppRunResult:
    """Prepare and execute one application end to end."""
    prepare, execute = APP_PHASES[app]
    return execute(prepare(input_class))
