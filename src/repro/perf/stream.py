"""Streaming orchestration: bounded-memory generate→simulate pipelines.

Genome-scale workloads (class D) produce traces too large to hold
resident. This module is the glue that lets the producers
(:meth:`repro.isa.interpreter.Machine.run_segments`,
:func:`repro.uarch.synthetic.generate_trace_segments`, the v3
tracestore's lazy :func:`repro.isa.tracestore.open_trace_segments`)
feed the carried-state consumers
(:meth:`repro.uarch.core.Core.simulate_stream`,
:func:`repro.uarch.batched.simulate_batched_stream`,
:func:`repro.bpred.replay.branch_stream`) without ever materialising
the whole trace:

* :func:`resolve_stream` / :func:`segment_events` read the
  ``REPRO_STREAM`` (default on) and ``REPRO_SEGMENT_EVENTS`` (default
  65536) switches;
* :func:`pipelined` overlaps generation with simulation through a
  bounded producer/consumer queue — the producer runs on its own
  thread, so the interpreter's pure-Python decode work interleaves
  with the simulator's loop at I/O and allocation points, and the
  queue depth bounds how many segments exist at once;
* :class:`StreamStats` accumulates run-wide streaming telemetry
  (segments produced/consumed, queue high-water mark, carried-state
  handoffs, peak segment bytes) that the engine journals and renders
  next to the batch block.
"""

from __future__ import annotations

import os
import queue
import sys
import threading
from dataclasses import dataclass, field

from repro.errors import WorkloadError

#: Values that turn a REPRO_* switch off (shared engine idiom).
_DISABLE_VALUES = ("off", "0", "false", "no")

#: Default bound on events per in-flight segment: large enough that
#: per-segment overheads (static-meta reuse, state handoff) vanish in
#: the noise, small enough that a segment's columns stay cache-friendly
#: and a handful of in-flight segments cost megabytes, not gigabytes.
DEFAULT_SEGMENT_EVENTS = 65_536

#: Default producer/consumer queue depth: one segment being consumed,
#: up to two queued, one being produced.
DEFAULT_QUEUE_DEPTH = 2

#: How long an abandoned pipeline waits for its producer thread to die
#: before declaring it wedged. The producer only ever blocks in 0.1 s
#: put timeouts, so anything near this bound means a stuck source
#: iterator, which must surface as an error rather than a silent hang.
JOIN_TIMEOUT_SECONDS = 30.0


def resolve_stream(stream: bool | None = None) -> bool:
    """Streaming switch: explicit > ``REPRO_STREAM`` > on.

    ``REPRO_STREAM=off`` (also ``0`` / ``false`` / ``no``) disables
    segment streaming — traces are materialised and simulated
    monolithically, exactly as before this subsystem existed; anything
    else leaves streaming enabled.
    """
    if stream is not None:
        return stream
    env = os.environ.get("REPRO_STREAM", "").strip().lower()
    return env not in _DISABLE_VALUES


def segment_events(override: int | None = None) -> int:
    """Events per segment: explicit > ``REPRO_SEGMENT_EVENTS`` > 65536."""
    if override is None:
        env = os.environ.get("REPRO_SEGMENT_EVENTS", "").strip()
        if not env:
            return DEFAULT_SEGMENT_EVENTS
        try:
            override = int(env)
        except ValueError:
            raise WorkloadError(
                f"REPRO_SEGMENT_EVENTS must be an integer, got {env!r}"
            ) from None
    if override < 1:
        raise WorkloadError(
            f"segment size must be positive, got {override}"
        )
    return override


@dataclass
class StreamStats:
    """Run-wide streaming telemetry (additive across pipelines)."""

    segments_produced: int = 0
    segments_consumed: int = 0
    queue_peak: int = 0
    handoffs: int = 0
    peak_segment_bytes: int = 0
    streams: int = 0

    def merge(self, other: "StreamStats") -> None:
        self.segments_produced += other.segments_produced
        self.segments_consumed += other.segments_consumed
        self.queue_peak = max(self.queue_peak, other.queue_peak)
        self.handoffs += other.handoffs
        self.peak_segment_bytes = max(
            self.peak_segment_bytes, other.peak_segment_bytes
        )
        self.streams += other.streams

    def as_dict(self) -> dict:
        return {
            "streams": self.streams,
            "segments_produced": self.segments_produced,
            "segments_consumed": self.segments_consumed,
            "queue_peak": self.queue_peak,
            "handoffs": self.handoffs,
            "peak_segment_bytes": self.peak_segment_bytes,
        }

    def __bool__(self) -> bool:
        return self.streams > 0


#: Module-level accumulator drained by the engine after each run.
_ACTIVE = StreamStats()
_ACTIVE_LOCK = threading.Lock()


def record_stream(stats: StreamStats) -> None:
    """Fold one pipeline's stats into the run-wide accumulator."""
    with _ACTIVE_LOCK:
        _ACTIVE.merge(stats)


def drain_stream_stats() -> StreamStats | None:
    """Hand off and reset the accumulated stats (None when untouched)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if not _ACTIVE:
            return None
        drained = _ACTIVE
        _ACTIVE = StreamStats()
    return drained


def _segment_bytes(segment) -> int:
    """Approximate resident size of one columnar segment's event data."""
    try:
        n = len(segment)
    except TypeError:
        return 0
    # pc/next_pc/address are int64, sid int32, flags uint8: 29 B/event.
    return n * 29


class _Poison:
    """Queue sentinel carrying the producer's terminal state."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException | None = None) -> None:
        self.error = error


def pipelined(
    segments,
    depth: int = DEFAULT_QUEUE_DEPTH,
    stats: StreamStats | None = None,
):
    """Run a segment producer on its own thread, bounded by ``depth``.

    Wraps any segment iterator in a producer thread plus a bounded
    :class:`queue.Queue` and yields the segments in order. At most
    ``depth`` finished segments are buffered, so memory stays bounded
    while generation overlaps consumption. A producer exception is
    re-raised at the consumer's next pull (after in-flight segments
    drain), preserving the sequential path's error surface; if the
    consumer abandons the iterator early, the producer is unblocked
    and joined.

    When ``stats`` is given it is updated in place and folded into the
    run-wide accumulator once the stream finishes.
    """
    if depth < 1:
        raise WorkloadError(f"pipeline depth must be positive, got {depth}")
    local = stats if stats is not None else StreamStats()
    local.streams += 1
    channel: queue.Queue = queue.Queue(maxsize=depth)
    abandoned = threading.Event()
    #: The producer's terminal exception, visible to the close path even
    #: when the consumer never pulls the poison that carries it.
    failure: list[BaseException] = []
    delivered = False

    def offer(item) -> bool:
        """Put that never outlives abandonment (a plain ``put`` can
        block forever if the consumer left and the drain slot refilled)."""
        while not abandoned.is_set():
            try:
                channel.put(item, timeout=0.1)
                return True
            except queue.Full:
                continue
        return False

    def produce() -> None:
        try:
            for segment in segments:
                local.segments_produced += 1
                local.peak_segment_bytes = max(
                    local.peak_segment_bytes, _segment_bytes(segment)
                )
                if not offer(segment):
                    return
            offer(_Poison())
        except BaseException as error:  # re-raised on the consumer side
            failure.append(error)
            offer(_Poison(error))

    producer = threading.Thread(
        target=produce, name="repro-stream-producer", daemon=True
    )
    producer.start()
    try:
        while True:
            local.queue_peak = max(local.queue_peak, channel.qsize())
            item = channel.get()
            if isinstance(item, _Poison):
                if item.error is not None:
                    delivered = True
                    raise item.error
                break
            local.segments_consumed += 1
            local.handoffs += 1
            yield item
    finally:
        abandoned.set()
        # Unblock a producer waiting on a full queue, then reap it.
        while True:
            try:
                channel.get_nowait()
            except queue.Empty:
                break
        producer.join(JOIN_TIMEOUT_SECONDS)
        record_stream(local)
        if producer.is_alive():
            raise WorkloadError(
                "stream producer thread failed to stop within "
                f"{JOIN_TIMEOUT_SECONDS:g}s of abandonment"
            )
        # A producer that died *after* abandonment (its source iterator
        # raised during wind-down) must not fail silently — but never
        # mask an exception already propagating on the consumer side.
        if failure and not delivered:
            pending = sys.exc_info()[0]
            if pending is None or pending is GeneratorExit:
                raise failure[0]
