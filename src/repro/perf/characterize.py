"""Whole-application workload models for the simulation experiments.

The paper simulates whole applications (SystemSim + SMARTS sampling).
Our equivalent composes, per application:

* the **kernel trace** — the real mini-ISA kernel executing on real
  sequence data, regenerated per code variant (baseline / hand / comp /
  combination); and
* a **background trace** — a synthetic stream with the application's
  non-kernel statistical profile (branch density, footprint), identical
  across code variants because predication only touches the kernels.

The mixing ratio comes from the measured Figure 1 function breakout:
``kernel_weight`` is the fraction of dynamic instructions spent in the
hot kernel for the *baseline* build. The background length is derived
once from the baseline kernel length and then held fixed, so variants
are compared on constant work.

``characterize(app, variant, config)`` returns a merged
:class:`~repro.uarch.core.SimResult`; ``work_cycles`` is the metric to
compare across variants (same work, fewer cycles = faster), and
``work_ipc`` normalises it to the paper's IPC presentation by dividing
the *baseline* instruction count by the variant's cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bio.hmm import build_hmm
from repro.bio.msa import clustalw
from repro.bio.scoring import BLOSUM62, GapPenalties
from repro.bio.workloads import make_family, mutate, random_sequence
from repro.errors import WorkloadError
from repro.isa.trace import Trace
from repro.kernels import forward_pass, gapped_extend, smith_waterman, viterbi
from repro.uarch.config import CoreConfig, power5
from repro.uarch.core import Core, SimResult
from repro.uarch.sampling import merge_results
from repro.uarch.synthetic import (
    MixProfile, generate_trace, generate_trace_segments,
)

#: Code variants in the paper's Figure 3 order.
VARIANTS = (
    "baseline", "hand_isel", "hand_max", "comp_isel", "comp_max",
    "combination",
)


@dataclass(frozen=True)
class AppWorkload:
    """Static description of one application's composite workload."""

    name: str
    kernel_weight: float  # fraction of instructions in the hot kernel
    background: MixProfile
    seed: int


#: Non-kernel instruction profiles, calibrated so the composite lands on
#: Table I's characterisation (low L1D miss rates, Blast's the highest;
#: branch densities in Table II's neighbourhood).
APP_WORKLOADS = {
    "blast": AppWorkload(
        name="blast",
        kernel_weight=0.45,
        background=MixProfile(
            branch_fraction=0.20,
            hard_branch_share=0.15,
            indirect_share=0.05,
            load_fraction=0.26,
            store_fraction=0.06,
            mul_fraction=0.04,
            footprint_words=3_500,
            far_fraction=0.03,
        ),
        seed=101,
    ),
    "clustalw": AppWorkload(
        name="clustalw",
        kernel_weight=0.49,
        background=MixProfile(
            branch_fraction=0.11,
            hard_branch_share=0.10,
            indirect_share=0.05,
            load_fraction=0.20,
            store_fraction=0.08,
            mul_fraction=0.10,
            footprint_words=1_500,
            far_fraction=0.0005,
        ),
        seed=103,
    ),
    "fasta": AppWorkload(
        name="fasta",
        kernel_weight=0.40,
        background=MixProfile(
            branch_fraction=0.26,
            hard_branch_share=0.12,
            indirect_share=0.05,
            load_fraction=0.22,
            store_fraction=0.06,
            mul_fraction=0.02,
            footprint_words=3_000,
            far_fraction=0.016,
        ),
        seed=107,
    ),
    "hmmer": AppWorkload(
        name="hmmer",
        kernel_weight=0.62,
        background=MixProfile(
            branch_fraction=0.13,
            hard_branch_share=0.12,
            indirect_share=0.05,
            load_fraction=0.28,
            store_fraction=0.10,
            mul_fraction=0.06,
            footprint_words=3_000,
            far_fraction=0.025,
        ),
        seed=109,
    ),
}

GAPS = GapPenalties(10, 2)

_kernel_trace_cache: dict[tuple[str, str], Trace] = {}
_background_cache: dict[str, Trace] = {}


def _kernel_inputs(app: str):
    """Representative kernel inputs per application (deterministic)."""
    if app == "fasta":
        # Fasta's input is the longest of the four (§III).
        family = make_family("fa", 2, 84, 0.3, seed=31)
        return family[0], family[1]
    if app == "clustalw":
        family = make_family("cw", 2, 58, 0.3, seed=33)
        return family[0], family[1]
    if app == "blast":
        # A gapped extension sees a conserved core flanked by divergent
        # sequence: share a motif, randomise the rest. The X-drop prune
        # then fires value-dependently, exactly as in real extensions.
        from repro.bio.sequence import Sequence

        motif = random_sequence("motif", 28, seed=36)
        left_a = random_sequence("la", 30, seed=37)
        right_a = random_sequence("ra", 34, seed=38)
        left_b = random_sequence("lb", 30, seed=39)
        right_b = random_sequence("rb", 34, seed=40)
        seq_a = Sequence(
            "ba", left_a.residues + motif.residues + right_a.residues
        )
        seq_b = Sequence(
            "bb", left_b.residues + mutate(motif, "m", 0.15).residues
            + right_b.residues
        )
        return seq_a, seq_b
    if app == "hmmer":
        # hmmpfam scans a query against *every* model; most models are
        # unrelated, so the Viterbi path churns unpredictably. One
        # related and one unrelated query capture both regimes.
        family = make_family("hm", 6, 40, 0.2, seed=41)
        msa = clustalw(family)
        model = build_hmm("hm", list(msa.rows), msa.sequences[0].alphabet)
        related = mutate(family[0], "q", 0.3)
        unrelated = random_sequence(
            "u", 44, msa.sequences[0].alphabet, seed=43
        )
        return model, (related, unrelated)
    raise WorkloadError(f"unknown application {app!r}")


def kernel_dimensions(app: str) -> tuple[tuple[int, int], ...]:
    """DP extents of the kernel inputs behind :func:`kernel_trace`.

    One ``(rows, cols)`` pair per DP problem the kernel solves — the
    sequence pair for the alignment kernels, ``(model states, query
    length)`` per query for hmmer. The accelerator layer
    (:mod:`repro.accel`) uses these to turn a characterised kernel's
    cycle count into a per-cell host cost, so CPU and offload estimates
    are calibrated from the *same* kernel inputs and traces.
    """
    if app == "hmmer":
        model, queries = _kernel_inputs(app)
        return tuple((model.length, len(query)) for query in queries)
    a, b = _kernel_inputs(app)
    return ((len(a), len(b)),)


def kernel_cell_count(app: str) -> int:
    """Total DP cells the app's kernel inputs induce."""
    return sum(rows * cols for rows, cols in kernel_dimensions(app))


def _generate_kernel_trace(app: str, variant: str) -> Trace:
    """Interpret the app's kernel and collect its dynamic trace."""
    trace = Trace()
    if app == "fasta":
        a, b = _kernel_inputs(app)
        smith_waterman.run(variant, a, b, BLOSUM62, GAPS, trace=trace)
    elif app == "clustalw":
        a, b = _kernel_inputs(app)
        forward_pass.run(variant, a, b, BLOSUM62, GAPS, trace=trace)
    elif app == "blast":
        a, b = _kernel_inputs(app)
        gapped_extend.run(
            variant, a, b, BLOSUM62, GapPenalties(11, 1), trace=trace
        )
    elif app == "hmmer":
        model, queries = _kernel_inputs(app)
        for query in queries:
            viterbi.run(variant, model, query, trace=trace)
    else:
        raise WorkloadError(f"unknown application {app!r}")
    return trace


def kernel_trace(app: str, variant: str) -> Trace:
    """The app's kernel trace for one code variant.

    Cached in memory and — because traces are expensive to regenerate
    but cheap to re-simulate — in the engine's persistent trace store,
    keyed by the simulation-source digest so any code change
    regenerates them.
    """
    # Imported here: the engine cache sits above the perf layer.
    from repro.engine.cache import active_cache

    key = (app, variant)
    if key not in _kernel_trace_cache:
        cache = active_cache()
        events = cache.load_trace(app, variant)
        if events is None:
            events = _generate_kernel_trace(app, variant)
            cache.store_trace(app, variant, events)
        _kernel_trace_cache[key] = events
    return _kernel_trace_cache[key]


def _background_length(app: str) -> int:
    """Background event count: sized from the *baseline* kernel length
    so that the kernel carries ``kernel_weight`` of the baseline
    instructions."""
    workload = APP_WORKLOADS[app]
    kernel_length = len(kernel_trace(app, "baseline"))
    return max(1_000, int(
        kernel_length * (1.0 - workload.kernel_weight)
        / workload.kernel_weight
    ))


def background_trace(app: str) -> Trace:
    """The app's fixed non-kernel trace (cached, persistently too)."""
    from repro.engine.cache import active_cache

    if app not in _background_cache:
        cache = active_cache()
        # "~background" cannot collide with a code-variant name.
        events = cache.load_trace(app, "~background")
        if events is None:
            workload = APP_WORKLOADS[app]
            events = generate_trace(
                _background_length(app), workload.background,
                seed=workload.seed,
            )
            cache.store_trace(app, "~background", events)
        _background_cache[app] = events
    return _background_cache[app]


def kernel_trace_segments(app: str, variant: str, segment_events=None):
    """Bounded-memory segment iterator over the app's kernel trace.

    Yields the identical event stream as :func:`kernel_trace`, in
    segments: an in-memory memo streams zero-copy views, a persistent
    v3 cache entry streams lazily frame by frame (never materialising
    the whole trace), and a cold cache generates once through
    :func:`kernel_trace` and then segments the result.
    """
    from repro.engine.cache import active_cache
    from repro.perf.stream import segment_events as resolve_segment_events

    size = resolve_segment_events(segment_events)
    key = (app, variant)
    if key in _kernel_trace_cache:
        return _kernel_trace_cache[key].segments(size)
    segments = active_cache().load_trace_segments(app, variant)
    if segments is not None:
        return segments
    return kernel_trace(app, variant).segments(size)


def background_trace_segments(app: str, segment_events=None):
    """Bounded-memory segment iterator over the app's background trace.

    Same stream as :func:`background_trace`; on a cold cache the
    synthetic generator itself runs segmented
    (:func:`~repro.uarch.synthetic.generate_trace_segments`), so the
    background never materialises. The cold stream is persisted on the
    way — segments are written to the v3 store as they are generated
    (still O(segment) live memory) and then served back through the
    lazy reader, so a cold streaming run populates the cache exactly
    like the monolithic loader does.
    """
    from repro.engine.cache import active_cache
    from repro.perf.stream import segment_events as resolve_segment_events

    size = resolve_segment_events(segment_events)
    if app in _background_cache:
        return _background_cache[app].segments(size)
    cache = active_cache()
    segments = cache.load_trace_segments(app, "~background")
    if segments is not None:
        return segments
    workload = APP_WORKLOADS[app]

    def generate():
        return generate_trace_segments(
            _background_length(app), workload.background,
            seed=workload.seed, segment_events=size,
        )

    if cache.enabled:
        cache.store_trace_segments(app, "~background", generate())
        segments = cache.load_trace_segments(app, "~background")
        if segments is not None:
            return segments
    return generate()


def background_stream(
    app: str, input_class: str = "C", segment_events=None
):
    """A class-scaled synthetic background stream (genome scale at D).

    The bounded-memory workload source for streaming benchmarks: the
    app's background profile, sized to ``input_class`` via
    :data:`repro.bio.workloads.CLASS_SCALES` — class D is ~4x class C,
    far past what a monolithic run wants resident. Returns
    ``(length, segment_iterator)``.
    """
    from repro.bio.workloads import CLASS_SCALES
    from repro.perf.stream import segment_events as resolve_segment_events

    if input_class not in CLASS_SCALES:
        raise WorkloadError(
            f"unknown input class {input_class!r}; expected one of "
            f"{sorted(CLASS_SCALES)}"
        )
    if app not in APP_WORKLOADS:
        raise WorkloadError(
            f"unknown application {app!r}; have {sorted(APP_WORKLOADS)}"
        )
    workload = APP_WORKLOADS[app]
    length = max(1_000, int(
        _background_length(app) * CLASS_SCALES[input_class]
    ))
    size = resolve_segment_events(segment_events)
    return length, generate_trace_segments(
        length, workload.background, seed=workload.seed,
        segment_events=size,
    )


def clear_trace_caches() -> None:
    """Drop the in-memory kernel/background trace memos (test isolation)."""
    _kernel_trace_cache.clear()
    _background_cache.clear()


def composite_trace(
    app: str, variant: str, chunk: int = 4_096
) -> Trace:
    """Kernel and background interleaved into one stream.

    Models the real program's alternation between kernel invocations
    and bookkeeping, so the branch predictor, BTAC and L1D experience
    cross-phase interference. Chunks are proportional to the two
    components' lengths. Chunks are zero-copy views; only the merged
    trace allocates.
    """
    kernel = kernel_trace(app, variant)
    background = background_trace(app)
    merged = Trace()
    if len(background) == 0:
        merged.extend(kernel)
        return merged
    ratio = len(background) / len(kernel)
    bg_chunk = max(1, int(chunk * ratio))
    kernel_pos = background_pos = 0
    while kernel_pos < len(kernel) or background_pos < len(background):
        merged.extend(kernel[kernel_pos : kernel_pos + chunk])
        kernel_pos += chunk
        merged.extend(background[background_pos : background_pos + bg_chunk])
        background_pos += bg_chunk
    return merged


@dataclass
class AppCharacterisation:
    """Composite simulation outcome for (app, variant, config).

    ``kernel`` and ``background`` hold per-component results when the
    components were simulated separately; they are None for interleaved
    runs (see :func:`characterize`'s ``interleaved`` flag).
    """

    app: str
    variant: str
    kernel: SimResult | None
    background: SimResult | None
    merged: SimResult
    baseline_instructions: int

    @property
    def cycles(self) -> int:
        """Total cycles for this variant's constant-work run."""
        return self.merged.cycles

    @property
    def ipc(self) -> float:
        """Committed-instruction IPC (what PMU counters would report)."""
        return self.merged.ipc

    @property
    def work_ipc(self) -> float:
        """Baseline instructions / this variant's cycles.

        Constant-work IPC: the paper's Figure 3/6 metric, comparable
        across code variants because the numerator is fixed. An empty
        run (zero cycles) yields 0.0 — the same convention as
        :attr:`SimResult.ipc` and the PMU-derived metrics — rather
        than a ZeroDivisionError.
        """
        if self.cycles == 0:
            return 0.0
        return self.baseline_instructions / self.cycles

    def speedup_over(self, other: "AppCharacterisation") -> float:
        """Performance improvement of self vs ``other`` (same work).

        Zero-cycle runs follow the 0.0 convention of the derived
        metrics: no work measured means no speedup claim.
        """
        if self.cycles == 0:
            return 0.0
        return other.cycles / self.cycles - 1.0


def characterize(
    app: str,
    variant: str = "baseline",
    config: CoreConfig | None = None,
    interleaved: bool = False,
    stream: bool | None = None,
) -> AppCharacterisation:
    """Simulate one application/variant/core combination.

    With ``interleaved=False`` (default) the kernel and background run
    on separate cores and the statistics are summed — fast, and each
    component's numbers stay inspectable. ``interleaved=True`` runs the
    chunk-interleaved composite stream through one core, so the
    predictor/BTAC/cache see cross-phase interference.

    ``stream`` (default: ``REPRO_STREAM``, on) drives the separate-core
    path through :meth:`~repro.uarch.core.Core.simulate_stream` over a
    pipelined segment iterator — trace decode/generation overlaps
    simulation on a producer thread and only a bounded window of
    segments is resident. Results are bit-identical either way; the
    interleaved path always runs monolithically (its chunk merge needs
    both whole traces).
    """
    if app not in APP_WORKLOADS:
        raise WorkloadError(
            f"unknown application {app!r}; have {sorted(APP_WORKLOADS)}"
        )
    if variant not in VARIANTS:
        raise WorkloadError(
            f"unknown variant {variant!r}; have {VARIANTS}"
        )
    config = config or power5()
    baseline_instructions = (
        len(kernel_trace(app, "baseline")) + _background_length(app)
    )
    if interleaved:
        merged = Core(config).simulate(composite_trace(app, variant))
        return AppCharacterisation(
            app=app,
            variant=variant,
            kernel=None,
            background=None,
            merged=merged,
            baseline_instructions=baseline_instructions,
        )
    from repro.perf.stream import pipelined, resolve_stream

    if resolve_stream(stream):
        kernel_result = Core(config).simulate_stream(
            pipelined(kernel_trace_segments(app, variant))
        )
        background_result = Core(config).simulate_stream(
            pipelined(background_trace_segments(app))
        )
    else:
        kernel_result = Core(config).simulate(kernel_trace(app, variant))
        background_result = Core(config).simulate(background_trace(app))
    merged = merge_results([kernel_result, background_result])
    return AppCharacterisation(
        app=app,
        variant=variant,
        kernel=kernel_result,
        background=background_result,
        merged=merged,
        baseline_instructions=baseline_instructions,
    )


def characterize_batched(
    app: str,
    variant: str,
    configs: list[CoreConfig],
    stream: bool | None = None,
) -> tuple[list[AppCharacterisation], dict]:
    """Simulate one (app, variant) under many configs in one trace pass.

    The batched equivalent of calling :func:`characterize` once per
    config: the kernel and background traces are each decoded once and
    driven through :func:`repro.uarch.batched.simulate_batched`, which
    shares a single frontend pass per group of configs with equal
    frontend state (predictor spec, BTAC geometry, cache geometry) and
    replays only the cheap timing recurrence per config. Results are
    byte-identical to the sequential path — each config still sees
    fresh predictor/BTAC/cache state.

    ``stream`` (default: ``REPRO_STREAM``, on) drives the shared pass
    through :func:`repro.uarch.batched.simulate_batched_stream` over a
    pipelined segment iterator, so trace decode overlaps the frontend
    walk and the decoded trace never materialises; results stay
    byte-identical.

    Returns ``(characterisations, info)`` where ``info`` reports how
    many points took the shared-frontend path (``vectorized``) versus
    the per-config scalar fallback (``fallback``), and whether the
    native replay kernel ran.
    """
    from repro.uarch.batched import simulate_batched, simulate_batched_stream

    if app not in APP_WORKLOADS:
        raise WorkloadError(
            f"unknown application {app!r}; have {sorted(APP_WORKLOADS)}"
        )
    if variant not in VARIANTS:
        raise WorkloadError(
            f"unknown variant {variant!r}; have {VARIANTS}"
        )
    configs = list(configs)
    baseline_instructions = (
        len(kernel_trace(app, "baseline")) + _background_length(app)
    )
    from repro.perf.stream import pipelined, resolve_stream

    if resolve_stream(stream):
        kernel_out = simulate_batched_stream(
            pipelined(kernel_trace_segments(app, variant)), configs
        )
        background_out = simulate_batched_stream(
            pipelined(background_trace_segments(app)), configs
        )
    else:
        kernel_out = simulate_batched(kernel_trace(app, variant), configs)
        background_out = simulate_batched(background_trace(app), configs)
    characterisations = [
        AppCharacterisation(
            app=app,
            variant=variant,
            kernel=kernel_result,
            background=background_result,
            merged=merge_results([kernel_result, background_result]),
            baseline_instructions=baseline_instructions,
        )
        for kernel_result, background_result in zip(
            kernel_out.results, background_out.results
        )
    ]
    # A point counts as vectorized only when both component traces took
    # the shared-frontend path.
    vectorized = sum(
        1
        for kernel_batched, background_batched in zip(
            kernel_out.batched, background_out.batched
        )
        if kernel_batched and background_batched
    )
    info = {
        "points": len(configs),
        "vectorized": vectorized,
        "fallback": len(configs) - vectorized,
        "native": kernel_out.native or background_out.native,
    }
    return characterisations, info
