"""Design-space sweep utility.

Evaluates a grid of (core configuration x code variant) design points
for one application and returns the results ranked by performance —
the reusable core of §VI-style studies and of the ``design_space``
example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.perf.characterize import AppCharacterisation, characterize
from repro.perf.report import Table, signed_percent
from repro.uarch.config import CoreConfig, power5


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design point."""

    label: str
    variant: str
    config: CoreConfig
    result: AppCharacterisation
    improvement: float  # vs the sweep's baseline point


def sweep(
    app: str,
    configs: dict[str, CoreConfig],
    variants: tuple[str, ...] = ("baseline", "combination"),
    baseline_label: str | None = None,
) -> list[DesignPoint]:
    """Evaluate every (config, variant) pair, best first.

    ``configs`` maps display labels to core configurations;
    ``baseline_label`` names the reference config (defaults to the
    first) which, with the ``baseline`` variant, anchors the
    improvement percentages.
    """
    if not configs:
        raise WorkloadError("need at least one configuration")
    if "baseline" not in variants:
        raise WorkloadError("variants must include 'baseline'")
    baseline_label = baseline_label or next(iter(configs))
    if baseline_label not in configs:
        raise WorkloadError(
            f"baseline label {baseline_label!r} not in configs"
        )
    reference = characterize(app, "baseline", configs[baseline_label])
    points: list[DesignPoint] = []
    for label, config in configs.items():
        for variant in variants:
            result = characterize(app, variant, config)
            points.append(
                DesignPoint(
                    label=label,
                    variant=variant,
                    config=config,
                    result=result,
                    improvement=result.speedup_over(reference),
                )
            )
    points.sort(key=lambda point: -point.improvement)
    return points


def sweep_table(app: str, points: list[DesignPoint]) -> Table:
    """Render sweep results as a ranked table."""
    table = Table(
        f"{app}: design-space sweep (vs baseline point)",
        ["Config", "Code", "work IPC", "Improvement"],
    )
    for point in points:
        table.add_row(
            point.label,
            point.variant,
            f"{point.result.work_ipc:.2f}",
            signed_percent(point.improvement),
        )
    return table


def paper_design_space(app: str) -> list[DesignPoint]:
    """The paper's §VI grid: +/-BTAC x 2/4 FXUs x baseline/combination."""
    base = power5()
    configs = {
        "POWER5": base,
        "POWER5+BTAC": base.with_btac(),
        "POWER5+4FXU": base.with_fxus(4),
        "POWER5+BTAC+4FXU": base.with_btac().with_fxus(4),
    }
    return sweep(app, configs)
