"""Durable run journal: crash-safe, resumable sweep records.

Every journaled ``fan_out`` appends to one JSONL file under the cache
directory — ``<cache_dir>/runs/<run_id>.jsonl`` — so an interrupted
sweep (SIGINT/SIGTERM, OOM kill, CI preemption) loses at most its
in-flight window and leaves a complete record of what ran:

* a ``run_start`` header: schema, run id, creation time, the full
  ordered point list (app, variant and the *complete* config payload,
  so a resume can reconstruct the sweep without the caller), the sweep
  digest, the simulation-source digest and the job count;
* one ``point_done`` record per completed point, carrying the digest of
  the point's canonical result payload so a resume can re-verify that
  the cached result it replays is byte-identical to what was journaled;
* one ``point_failed`` record per point that exhausted its retries;
* a ``run_complete`` footer once the sweep has drained.

Records are written one JSON object per line, flushed and fsync'd
individually, so the journal on disk is always a prefix of the logical
record stream. Reads are **torn-tail tolerant**: a final line truncated
mid-record (the signature of a crash during append) is ignored rather
than raised, and every fully-written record before it is preserved —
a resume therefore never double-runs a journaled point and never drops
a completed one. A malformed line *before* the tail marks the journal
corrupt (something other than an append crash damaged it), which
``repro runs`` surfaces instead of silently resuming from bad state.

**Lease records** (the sweep-service work-claiming layer, see
:mod:`repro.service.claims` and ``docs/service.md``) extend the same
file so several worker processes can drain one run concurrently:

* ``point_claimed`` — a worker's bid for one point, carrying the
  worker id, the bid time, and an absolute lease expiry;
* ``point_heartbeat`` — a lease renewal by the current owner;
* ``point_released`` — a voluntary give-back (the worker hit an error
  and wants the point immediately reclaimable);
* ``worker_stats`` — one worker's claim/steal/heartbeat counters,
  appended when it finishes draining.

Claim arbitration is **file order**: appends to an ``O_APPEND`` file
serialize, so every reader replays the records in the same order and
computes the same owner. A claim wins iff, at its recorded bid time,
the point had no live lease held by another worker (first-writer wins;
an expired lease loses to a later bid — that is the crash-recovery
steal). Heartbeats renew only the current owner's lease; a stale
heartbeat from a worker that already lost its lease is void. All four
record types are additive: readers that predate them skip unknown
records, and the journal schema is unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import uuid
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.digest import config_digest, sim_source_digest, sweep_digest
from repro.engine.serialize import config_from_dict, config_to_dict
from repro.errors import WorkloadError

#: Journal record schema. Bump on incompatible record-shape changes;
#: readers refuse to resume from a newer schema than they understand.
JOURNAL_SCHEMA = 1

#: Record types, in the order a healthy journal contains them.
RECORD_START = "run_start"
RECORD_RESUMED = "run_resumed"
RECORD_DONE = "point_done"
RECORD_FAILED = "point_failed"
RECORD_BATCH = "batch_stats"
RECORD_STREAM = "stream_stats"
RECORD_ACCEL = "accel_stats"
RECORD_COMPLETE = "run_complete"
RECORD_CLAIMED = "point_claimed"
RECORD_HEARTBEAT = "point_heartbeat"
RECORD_RELEASED = "point_released"
RECORD_WORKER = "worker_stats"

#: ``RunState.status`` values (also what ``repro runs`` prints).
STATUS_COMPLETE = "complete"
STATUS_RESUMABLE = "resumable"
STATUS_CORRUPT = "corrupt"


class JournalWarning(UserWarning):
    """A journal was damaged or unreadable but listing/pruning went on.

    Emitted (never raised) by :func:`list_runs` and :func:`prune_runs`
    so batch operations over a runs directory survive one bad file —
    the corrupt entry is still reported (``repro runs`` renders it as
    ``corrupt``), it just cannot abort its neighbours.
    """


@dataclass(frozen=True)
class Lease:
    """One point's live claim: who owns it and until when."""

    worker: str
    expires: float

    def live(self, now: float) -> bool:
        return self.expires > now


def runs_root(cache_root: Path | str) -> Path:
    """Where journals live (outside the schema-versioned entry roots)."""
    return Path(cache_root) / "runs"


def journal_path(cache_root: Path | str, run_id: str) -> Path:
    return runs_root(cache_root) / f"{run_id}.jsonl"


def new_run_id() -> str:
    """A sortable-by-time, collision-safe run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


def _key_fields(key: tuple[str, str, str]) -> dict:
    app, variant, digest = key
    return {"app": app, "variant": variant, "config_digest": digest}


class RunJournal:
    """Append-side handle for one run's journal file.

    Use :meth:`create` for a fresh sweep (writes the header) or
    :meth:`reopen` to continue an interrupted one (appends a
    ``run_resumed`` marker). Every ``record_*`` call appends one line,
    flushes, and fsyncs before returning, so a record the caller saw
    acknowledged survives any later crash.
    """

    def __init__(self, path: Path, run_id: str, handle) -> None:
        self.path = path
        self.run_id = run_id
        self._handle = handle
        # A worker's heartbeat thread appends concurrently with its
        # main loop; one lock keeps each record's write+fsync atomic
        # within the process (across processes, O_APPEND serializes).
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        cache_root: Path | str,
        points,
        jobs: int,
        run_id: str | None = None,
    ) -> "RunJournal":
        """Open a new journal and write its ``run_start`` header.

        ``points`` is the sweep's full ordered request list of
        ``(app, variant, CoreConfig)`` triples (duplicates included, so
        a resume rebuilds the exact ordered output).
        """
        run_id = run_id or new_run_id()
        path = journal_path(cache_root, run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(path, "ab")
        journal = cls(path, run_id, handle)
        journal._append({
            "record": RECORD_START,
            "schema": JOURNAL_SCHEMA,
            "run_id": run_id,
            "created": time.time(),
            "jobs": jobs,
            "source_digest": sim_source_digest(),
            "sweep_digest": sweep_digest(
                [(app, variant, config_digest(config))
                 for app, variant, config in points]
            ),
            "points": [
                {
                    "app": app,
                    "variant": variant,
                    "config": config_to_dict(config),
                    "config_digest": config_digest(config),
                }
                for app, variant, config in points
            ],
        })
        return journal

    @classmethod
    def reopen(cls, cache_root: Path | str, run_id: str) -> "RunJournal":
        """Append to an existing journal (a resume attempt)."""
        path = journal_path(cache_root, run_id)
        if not path.exists():
            raise WorkloadError(f"no journal for run {run_id!r} at {path}")
        handle = open(path, "ab")
        journal = cls(path, run_id, handle)
        journal._append({
            "record": RECORD_RESUMED,
            "run_id": run_id,
            "time": time.time(),
        })
        return journal

    @classmethod
    def attach(cls, cache_root: Path | str, run_id: str) -> "RunJournal":
        """Append to an existing journal without any marker record.

        Workers draining a run attach — they are not resuming it, so
        a ``run_resumed`` marker (which would clear the completion
        footer) must not be written.
        """
        path = journal_path(cache_root, run_id)
        if not path.exists():
            raise WorkloadError(f"no journal for run {run_id!r} at {path}")
        return cls(path, run_id, open(path, "ab"))

    # -- records -----------------------------------------------------------

    def record_point_done(
        self, key: tuple[str, str, str], result_digest: str
    ) -> None:
        self._append({
            "record": RECORD_DONE,
            **_key_fields(key),
            "result_digest": result_digest,
        })

    def record_point_failed(
        self, key: tuple[str, str, str], kind: str, error_type: str,
        message: str,
    ) -> None:
        self._append({
            "record": RECORD_FAILED,
            **_key_fields(key),
            "kind": kind,
            "error_type": error_type,
            "message": message,
        })

    def record_point_claimed(
        self,
        key: tuple[str, str, str],
        worker: str,
        lease_seconds: float,
        now: float | None = None,
    ) -> float:
        """Bid for one point; returns the absolute lease expiry.

        Appending is only half the protocol: the bid wins iff a re-read
        of the journal shows this worker as the owner (file order is
        the arbiter — see the module docstring and
        :meth:`RunState.owner_of`).
        """
        now = time.time() if now is None else now
        expires = now + lease_seconds
        self._append({
            "record": RECORD_CLAIMED,
            **_key_fields(key),
            "worker": worker,
            "time": now,
            "expires": expires,
        })
        return expires

    def record_point_heartbeat(
        self,
        key: tuple[str, str, str],
        worker: str,
        lease_seconds: float,
        now: float | None = None,
    ) -> float:
        """Renew a held lease; void if the worker no longer owns it."""
        now = time.time() if now is None else now
        expires = now + lease_seconds
        self._append({
            "record": RECORD_HEARTBEAT,
            **_key_fields(key),
            "worker": worker,
            "time": now,
            "expires": expires,
        })
        return expires

    def record_point_released(
        self, key: tuple[str, str, str], worker: str
    ) -> None:
        """Voluntarily give a claim back (immediate reclaim, no expiry)."""
        self._append({
            "record": RECORD_RELEASED,
            **_key_fields(key),
            "worker": worker,
            "time": time.time(),
        })

    def record_worker_stats(self, worker: str, stats: dict) -> None:
        """One worker's drain counters (additive record, schema unchanged)."""
        self._append({
            "record": RECORD_WORKER,
            "run_id": self.run_id,
            "worker": worker,
            **{key: int(value) for key, value in stats.items()},
        })

    def record_batch_stats(self, stats: dict) -> None:
        """Batched-simulation summary for this attempt (additive record).

        ``stats`` carries the batch counters accumulated during the
        sweep (groups, points, vectorized, fallback, decode reuse).
        Older readers skip the record; the journal schema is unchanged.
        """
        self._append({
            "record": RECORD_BATCH,
            "run_id": self.run_id,
            **{key: int(value) for key, value in stats.items()},
        })

    def record_stream_stats(self, stats: dict) -> None:
        """Streaming-simulation summary for this attempt (additive).

        ``stats`` carries the stream counters drained from
        :mod:`repro.perf.stream` (streams, segments produced/consumed,
        queue high-water mark, handoffs, peak segment bytes). Older
        readers skip the record; the journal schema is unchanged.
        """
        self._append({
            "record": RECORD_STREAM,
            "run_id": self.run_id,
            **{key: int(value) for key, value in stats.items()},
        })

    def record_accel_stats(self, stats: dict) -> None:
        """Accelerator-offload summary for this attempt (additive).

        ``stats`` carries the accel counters accumulated during the
        sweep (points, batched, per-backend counts, offload/transfer
        cycles). Older readers skip the record; the journal schema is
        unchanged.
        """
        self._append({
            "record": RECORD_ACCEL,
            "run_id": self.run_id,
            **{key: int(value) for key, value in stats.items()},
        })

    def record_complete(self, failures: int) -> None:
        self._append({
            "record": RECORD_COMPLETE,
            "run_id": self.run_id,
            "failures": failures,
            "time": time.time(),
        })

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _append(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        if self._handle is None:
            raise WorkloadError(f"journal for run {self.run_id!r} is closed")
        with self._lock:
            self._handle.write(line.encode("utf-8") + b"\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())


@dataclass
class RunState:
    """Read-side view of one journal, torn-tail tolerant."""

    path: Path
    run_id: str
    schema: int = JOURNAL_SCHEMA
    created: float = 0.0
    jobs: int = 1
    source_digest: str = ""
    sweep_digest: str = ""
    #: The sweep's full ordered request list, as journaled.
    points: list[tuple[str, str, dict]] = field(default_factory=list)
    #: key -> result payload digest (last record wins).
    done: dict[tuple[str, str, str], str] = field(default_factory=dict)
    #: key -> failure kind, for points that exhausted their retries and
    #: were never later completed.
    failed: dict[tuple[str, str, str], str] = field(default_factory=dict)
    complete: bool = False
    #: Failure count from the last ``run_complete`` footer.
    complete_failures: int = 0
    resumed: int = 0
    #: Batched-simulation counters from the last ``batch_stats`` record
    #: (``None`` when the run never batched / predates batching).
    batch: dict | None = None
    #: Streaming counters from the last ``stream_stats`` record
    #: (``None`` when the run never streamed / predates streaming).
    stream: dict | None = None
    #: Accelerator counters from the last ``accel_stats`` record
    #: (``None`` when the run never offloaded / predates the accel
    #: subsystem).
    accel: dict | None = None
    #: Live/last lease per claimed point (dropped on ``point_done``).
    claims: dict[tuple[str, str, str], Lease] = field(default_factory=dict)
    #: Per-worker drain counters from ``worker_stats`` records.
    workers: dict[str, dict] = field(default_factory=dict)
    #: Claim bids that lost the file-order race (void records).
    claim_conflicts: int = 0
    #: Claims that took over an expired lease (crash-recovery steals).
    lease_steals: int = 0
    #: 1 if the final line was truncated mid-record (crash signature).
    torn_tail: int = 0
    #: Set when a record *before* the tail failed to parse.
    corrupt: str | None = None
    #: The header's schema when it is newer than this reader supports
    #: (0 otherwise). Such journals read as corrupt but are *never*
    #: pruned — they belong to a newer build, not to the bit bucket.
    newer_schema: int = 0

    @property
    def status(self) -> str:
        if self.corrupt is not None:
            return STATUS_CORRUPT
        if self.complete:
            return STATUS_COMPLETE
        return STATUS_RESUMABLE

    @property
    def total_points(self) -> int:
        return len(self.points)

    @property
    def unique_keys(self) -> list[tuple[str, str, str]]:
        """Deduplicated point keys, in first-seen order.

        Tolerant of a config payload that no longer round-trips (a
        journal written by a different config schema): such a point
        gets a deterministic fallback digest derived from the raw
        payload, so listing a damaged journal still counts its points
        instead of crashing ``repro runs``.
        """
        seen: dict[tuple[str, str, str], None] = {}
        for app, variant, config in self.points:
            try:
                digest = config_digest_of(config)
            except Exception:
                raw = json.dumps(
                    config, sort_keys=True, separators=(",", ":"),
                    default=str,
                )
                digest = "raw-" + hashlib.sha256(
                    raw.encode("utf-8")
                ).hexdigest()
            seen.setdefault((app, variant, digest), None)
        return list(seen)

    def pending_keys(self) -> list[tuple[str, str, str]]:
        """Unique keys not yet done and not recorded as failed."""
        return [
            key for key in self.unique_keys
            if key not in self.done and key not in self.failed
        ]

    def owner_of(
        self, key: tuple[str, str, str], now: float | None = None
    ) -> str | None:
        """The worker holding a live lease on ``key`` (None if free)."""
        lease = self.claims.get(key)
        if lease is None:
            return None
        if not lease.live(time.time() if now is None else now):
            return None
        return lease.worker

    def claimable_keys(
        self, now: float | None = None
    ) -> list[tuple[str, str, str]]:
        """Pending keys with no live lease, in sweep order."""
        now = time.time() if now is None else now
        return [
            key for key in self.pending_keys()
            if self.owner_of(key, now) is None
        ]

    def reconstruct_points(self) -> list[tuple[str, str, object]]:
        """The journaled sweep as live ``(app, variant, CoreConfig)``."""
        return [
            (app, variant, config_from_dict(config))
            for app, variant, config in self.points
        ]

    def age_seconds(self, now: float | None = None) -> float:
        reference = self.created
        if not reference:
            try:
                reference = self.path.stat().st_mtime
            except OSError:
                return 0.0
        return max(0.0, (now if now is not None else time.time()) - reference)


def config_digest_of(config_payload: dict) -> str:
    """Digest of a journaled config payload (round-trips the dataclass).

    Re-digesting through the reconstructed :class:`CoreConfig` (rather
    than hashing the stored dict directly) guarantees the digest matches
    what a fresh sweep over the same configuration would compute.
    """
    return config_digest(config_from_dict(config_payload))


def load_journal(path: Path | str) -> RunState:
    """Parse one journal file, tolerating a torn final record.

    Never raises on a truncated tail: a final line that is not valid
    JSON (or not a complete record) is counted in ``torn_tail`` and
    ignored. A bad line anywhere earlier marks the state ``corrupt``
    and parsing stops — the prefix before the damage is still reported
    so ``repro runs`` can describe what survives.
    """
    path = Path(path)
    state = RunState(path=path, run_id=path.stem)
    try:
        raw = path.read_bytes()
    except OSError as error:
        state.corrupt = f"unreadable: {error}"
        return state
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    for index, line in enumerate(lines):
        last = index == len(lines) - 1
        try:
            payload = json.loads(line.decode("utf-8"))
            if not isinstance(payload, dict) or "record" not in payload:
                raise ValueError("not a journal record")
        except (ValueError, UnicodeDecodeError):
            # A final line that does not parse is the signature of a
            # crash mid-append (truncation can only strip JSON closers,
            # never fabricate them): tolerate it. Damage anywhere
            # earlier is real corruption.
            if last:
                state.torn_tail = 1
            else:
                state.corrupt = f"malformed record on line {index + 1}"
                break
            continue
        try:
            _apply_record(state, payload, index)
        except Exception as error:
            # A structurally-valid JSON line whose payload violates the
            # record shape (wrong field types, a newer writer's layout):
            # corrupt, never an exception out of a listing loop.
            state.corrupt = (
                f"malformed {payload.get('record')} record on line "
                f"{index + 1}: {type(error).__name__}"
            )
        if state.corrupt is not None:
            break
    return state


def _apply_record(state: RunState, payload: dict, index: int) -> None:
    kind = payload.get("record")
    if kind == RECORD_START:
        schema = int(payload.get("schema", 0))
        if schema > JOURNAL_SCHEMA:
            state.newer_schema = schema
            state.corrupt = (
                f"journal schema {schema} is newer than supported "
                f"{JOURNAL_SCHEMA}"
            )
            return
        state.schema = schema
        state.run_id = str(payload.get("run_id", state.run_id))
        state.created = float(payload.get("created", 0.0))
        state.jobs = int(payload.get("jobs", 1))
        state.source_digest = str(payload.get("source_digest", ""))
        state.sweep_digest = str(payload.get("sweep_digest", ""))
        try:
            state.points = [
                (str(p["app"]), str(p["variant"]), dict(p["config"]))
                for p in payload["points"]
            ]
        except (KeyError, TypeError):
            state.corrupt = f"malformed run_start header on line {index + 1}"
    elif kind == RECORD_DONE:
        try:
            key = (
                str(payload["app"]), str(payload["variant"]),
                str(payload["config_digest"]),
            )
            state.done[key] = str(payload["result_digest"])
        except KeyError:
            state.corrupt = f"malformed point_done on line {index + 1}"
            return
        state.failed.pop(key, None)
        state.claims.pop(key, None)
    elif kind == RECORD_FAILED:
        try:
            key = (
                str(payload["app"]), str(payload["variant"]),
                str(payload["config_digest"]),
            )
        except KeyError:
            state.corrupt = f"malformed point_failed on line {index + 1}"
            return
        if key not in state.done:
            state.failed[key] = str(payload.get("kind", "unknown"))
    elif kind == RECORD_CLAIMED:
        key = (
            str(payload["app"]), str(payload["variant"]),
            str(payload["config_digest"]),
        )
        if key in state.done:
            return  # bid on an already-finished point: void
        worker = str(payload["worker"])
        bid_time = float(payload["time"])
        expires = float(payload["expires"])
        lease = state.claims.get(key)
        if lease is None or lease.worker == worker:
            state.claims[key] = Lease(worker, expires)
        elif not lease.live(bid_time):
            # Expired lease loses to a later bid: crash-recovery steal.
            state.claims[key] = Lease(worker, expires)
            state.lease_steals += 1
        else:
            state.claim_conflicts += 1
    elif kind == RECORD_HEARTBEAT:
        key = (
            str(payload["app"]), str(payload["variant"]),
            str(payload["config_digest"]),
        )
        worker = str(payload["worker"])
        lease = state.claims.get(key)
        # Only the current owner renews; a stale heartbeat from a
        # worker that already lost the lease is void.
        if lease is not None and lease.worker == worker:
            state.claims[key] = Lease(worker, float(payload["expires"]))
    elif kind == RECORD_RELEASED:
        key = (
            str(payload["app"]), str(payload["variant"]),
            str(payload["config_digest"]),
        )
        lease = state.claims.get(key)
        if lease is not None and lease.worker == str(payload["worker"]):
            del state.claims[key]
    elif kind == RECORD_WORKER:
        worker = str(payload["worker"])
        state.workers[worker] = {
            key: int(value)
            for key, value in payload.items()
            if key not in ("record", "run_id", "worker")
        }
    elif kind == RECORD_BATCH:
        state.batch = {
            key: int(value)
            for key, value in payload.items()
            if key not in ("record", "run_id")
        }
    elif kind == RECORD_STREAM:
        state.stream = {
            key: int(value)
            for key, value in payload.items()
            if key not in ("record", "run_id")
        }
    elif kind == RECORD_ACCEL:
        state.accel = {
            key: int(value)
            for key, value in payload.items()
            if key not in ("record", "run_id")
        }
    elif kind == RECORD_COMPLETE:
        state.complete = True
        state.complete_failures = int(payload.get("failures", 0))
    elif kind == RECORD_RESUMED:
        state.resumed += 1
        # A resume attempt reopens the run: a prior footer no longer
        # describes the latest attempt unless it is re-written.
        state.complete = False
    # Unknown record types from same-or-older schemas are skipped, so
    # minor additive changes stay readable.


def load_run(cache_root: Path | str, run_id: str) -> RunState:
    """Load one run's journal by id; raises if it does not exist."""
    path = journal_path(cache_root, run_id)
    if not path.exists():
        existing = ", ".join(
            sorted(state.run_id for state in list_runs(cache_root))
        ) or "none"
        raise WorkloadError(
            f"no journal for run {run_id!r} under {runs_root(cache_root)} "
            f"(existing runs: {existing})"
        )
    return load_journal(path)


def list_runs(cache_root: Path | str) -> list[RunState]:
    """All journals under ``cache_root``, newest first."""
    root = runs_root(cache_root)
    if not root.exists():
        return []
    states = [
        load_journal(path) for path in sorted(root.glob("*.jsonl"))
    ]
    for state in states:
        if state.corrupt is not None:
            warnings.warn(
                f"run {state.run_id!r}: {state.corrupt}", JournalWarning,
                stacklevel=2,
            )
    states.sort(key=lambda state: (state.created, state.run_id), reverse=True)
    return states


def prune_runs(
    cache_root: Path | str,
    max_age_seconds: float = 0.0,
    include_resumable: bool = False,
) -> int:
    """Remove finished journals older than ``max_age_seconds``.

    Resumable (interrupted) journals are kept unless
    ``include_resumable`` is set — they are the recovery record for
    work someone may still want back. Corrupt journals are treated as
    finished (there is nothing trustworthy to resume). Returns the
    number of journal files removed.
    """
    removed = 0
    now = time.time()
    for state in list_runs(cache_root):
        if state.newer_schema:
            # A newer build's journal reads as corrupt here, but it is
            # not garbage — never delete another version's run record.
            warnings.warn(
                f"run {state.run_id!r}: schema {state.newer_schema} is "
                f"newer than supported {JOURNAL_SCHEMA}; not pruning",
                JournalWarning, stacklevel=2,
            )
            continue
        if state.status == STATUS_RESUMABLE and not include_resumable:
            continue
        if state.age_seconds(now) < max_age_seconds:
            continue
        try:
            state.path.unlink()
            removed += 1
        except OSError:
            continue
    return removed
