"""Canonical content digests for engine cache keys.

Two ingredients address every cache entry:

* :func:`sim_source_digest` — a SHA-256 over every Python source file
  that can change a trace or a simulation result: the kernels, the
  compiler, the ISA, the bio layer that generates kernel inputs, the
  micro-architectural model, and the characterisation driver itself.
  Editing any of them yields a new digest, so stale entries are never
  served; untouched sources keep the cache warm across checkouts.
* :func:`config_digest` — a SHA-256 over the canonical JSON form of a
  :class:`~repro.uarch.config.CoreConfig` (nested predictor/BTAC/cache
  blocks included), replacing the dataclass identity/hash semantics
  the old memo key leaned on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path

from repro.isa.tracestore import TRACE_FORMAT_VERSION
from repro.uarch.config import CoreConfig

#: Bump to invalidate every cache entry on disk (layout/format changes).
#: 2: traces persist in the binary columnar v2 format.
#: 3: ``CoreConfig.predictor`` is a :class:`PredictorSpec` (kind +
#:    geometry), so every config digest — and the journaled configs
#:    they address — changed shape.
#: 4: accelerator result slots (``<variant>~accel``) joined the result
#:    store and ``repro.accel`` sources joined the source digest.
CACHE_SCHEMA_VERSION = 4

#: Packages/modules (relative to the ``repro`` package) whose source
#: participates in trace/result generation.
_SIM_SOURCE_ROOTS = (
    "isa",
    "kernels",
    "compiler",
    "bio",
    "uarch",
    "bpred",
    "accel",
    "perf/characterize.py",
)

#: Hex digits kept when embedding digests in file names.
SHORT_DIGEST = 12

_source_digest_cache: str | None = None


def config_digest(config: CoreConfig) -> str:
    """Canonical digest of a configuration dataclass.

    The payload embeds the dataclass type name, so a
    :class:`~repro.accel.config.AccelConfig` digest can never collide
    with a :class:`CoreConfig` digest, even for equal field values.
    """
    if not is_dataclass(config):
        raise TypeError(f"expected a config dataclass, got {type(config)!r}")
    payload = json.dumps(
        {"type": type(config).__name__, "config": asdict(config)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _iter_source_files() -> list[Path]:
    package_root = Path(__file__).resolve().parent.parent
    files: list[Path] = []
    for root in _SIM_SOURCE_ROOTS:
        path = package_root / root
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
    return files


def sim_source_digest() -> str:
    """Digest of all simulation-relevant source files (cached per process)."""
    global _source_digest_cache
    if _source_digest_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        hasher = hashlib.sha256()
        hasher.update(f"schema:{CACHE_SCHEMA_VERSION}".encode())
        hasher.update(f"trace-format:{TRACE_FORMAT_VERSION}".encode())
        for path in _iter_source_files():
            hasher.update(str(path.relative_to(package_root)).encode())
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _source_digest_cache = hasher.hexdigest()
    return _source_digest_cache


def point_key(app: str, variant: str, config: CoreConfig) -> tuple[str, str, str]:
    """The canonical memo key for one design point."""
    return (app, variant, config_digest(config))


def result_payload_digest(payload: dict) -> str:
    """Digest of a serialized result payload (journal re-verification).

    Computed over the same canonical JSON form the persistent cache
    stores, so "the cached entry still matches what the journal saw"
    is an exact byte-level statement.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def sweep_digest(keys: list[tuple[str, str, str]]) -> str:
    """Digest identifying one sweep's full ordered point-key list."""
    payload = json.dumps(list(keys), sort_keys=False, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
