"""Persistent content-addressed cache for traces and results.

Layout (under a versioned root so schema bumps invalidate wholesale)::

    <cache_dir>/v<SCHEMA>/
        traces/<app>/<variant>-<source_digest12>.trace
        results/<app>/<variant>-<source_digest12>-<config_digest12>.json

Traces use the :mod:`repro.isa.tracestore` **v3 segmented binary**
format — "expensive to regenerate but cheap to re-simulate", and now
also streamable frame by frame — and
results the strict JSON schema of :mod:`repro.engine.serialize` (stored
here as opaque dicts; the engine layer (de)serialises). Legacy v1/v2
entries still load (and are rewritten as v3 on first read); the trace
format version is folded into the source digest, so a format bump
re-addresses every entry. Every read is corruption-safe: a
truncated, malformed or partially-written entry is evicted and treated
as a miss, never raised to the caller.

The cache directory resolves, in order: an explicit path, the
``REPRO_CACHE_DIR`` environment variable, then
``$XDG_CACHE_HOME/repro-power5`` (``~/.cache/repro-power5``). Setting
``REPRO_CACHE=off`` (or ``0``/``false``/``no``) disables persistence
entirely; every operation then degrades to a miss/no-op.

Writes are atomic (temp file + ``os.replace``) so concurrent workers
sharing one cache directory can never expose half-written entries.

The store is self-healing: corrupt entries are **quarantined** (moved
under ``<cache_dir>/quarantine/``, preserving the evidence) rather than
silently unlinked, and :meth:`PersistentCache.gc` (``repro cache gc``)
sweeps the ``.tmp-*`` litter left behind by killed workers and
validates + quarantines damaged entries in place.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.digest import (
    CACHE_SCHEMA_VERSION,
    SHORT_DIGEST,
    sim_source_digest,
)
from repro.errors import ReproError
from repro.isa.trace import Trace, TraceEvent
from repro.isa.tracestore import (
    TRACE_FORMAT_VERSION,
    load_trace_columnar,
    open_trace_segments,
    save_trace_v3,
    trace_format,
)

_DISABLE_VALUES = {"0", "off", "false", "no"}

#: Per-process random disambiguator for atomic-write temp names. The
#: PID alone is not unique across containers sharing one mount (two
#: namespaces can both be PID 7), so every writer also carries eight
#: random hex digits drawn once per process.
_TMP_RANDOM = os.urandom(4).hex()


def tmp_suffix() -> str:
    """The atomic-write temp suffix for this process.

    Computed per call so the PID stays correct across ``fork()``
    (forked workers inherit the module but get their own PID); the
    random component is shared within one machine, where PIDs already
    disambiguate.
    """
    return f".tmp-{os.getpid()}-{_TMP_RANDOM}"


def _is_tmp(path: Path) -> bool:
    """Whether ``path`` is an in-flight atomic-write temp file."""
    return path.name.startswith(".") and ".tmp-" in path.name


def _iter_files(root: Path):
    """Walk the files under ``root``, tolerant of concurrent writers.

    ``Path.rglob`` raises :class:`OSError` if a directory vanishes
    under the walk (a concurrent ``clear``/``gc``), and its ``is_file``
    checks race with ``os.replace``. This walker skips whatever
    vanishes and keeps going — maintenance scans must never fail
    because another worker is busy.
    """
    stack = [root]
    while stack:
        directory = stack.pop()
        try:
            entries = list(os.scandir(directory))
        except OSError:
            continue
        for entry in entries:
            try:
                if entry.is_dir(follow_symlinks=False):
                    stack.append(Path(entry.path))
                elif entry.is_file(follow_symlinks=False):
                    yield Path(entry.path)
            except OSError:
                continue


def default_cache_dir() -> Path | None:
    """Resolve the cache root from the environment (None = disabled)."""
    if os.environ.get("REPRO_CACHE", "").strip().lower() in _DISABLE_VALUES:
        return None
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return Path(explicit)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-power5"


@dataclass
class CacheCounters:
    """Process-local hit/miss accounting (part of engine telemetry)."""

    trace_hits: int = 0
    trace_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    evictions: int = 0
    quarantined: int = 0

    def to_dict(self) -> dict:
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
        }

    def merge(self, other: "CacheCounters") -> None:
        self.trace_hits += other.trace_hits
        self.trace_misses += other.trace_misses
        self.result_hits += other.result_hits
        self.result_misses += other.result_misses
        self.evictions += other.evictions
        self.quarantined += other.quarantined


class PersistentCache:
    """Content-addressed trace/result store under one directory."""

    def __init__(self, root: Path | str | None) -> None:
        self.root = Path(root) if root is not None else None
        self.counters = CacheCounters()

    @property
    def enabled(self) -> bool:
        return self.root is not None

    @property
    def version_root(self) -> Path:
        if self.root is None:
            raise ReproError("persistent cache is disabled")
        return self.root / f"v{CACHE_SCHEMA_VERSION}"

    @property
    def quarantine_root(self) -> Path:
        """Where corrupt entries are moved (outside every version root)."""
        if self.root is None:
            raise ReproError("persistent cache is disabled")
        return self.root / "quarantine"

    # -- path derivation ---------------------------------------------------

    def trace_path(self, app: str, variant: str) -> Path:
        digest = sim_source_digest()[:SHORT_DIGEST]
        return self.version_root / "traces" / app / f"{variant}-{digest}.trace"

    def result_path(self, app: str, variant: str, config_digest: str) -> Path:
        digest = sim_source_digest()[:SHORT_DIGEST]
        name = f"{variant}-{digest}-{config_digest[:SHORT_DIGEST]}.json"
        return self.version_root / "results" / app / name

    # -- traces ------------------------------------------------------------

    def load_trace(self, app: str, variant: str) -> Trace | None:
        """The cached trace, or None (miss or evicted corruption).

        Always returns the columnar form. A legacy v1/v2 entry is
        transparently rewritten in place as segmented v3 binary, so a
        cache populated by an older build upgrades itself on first
        read.
        """
        if not self.enabled:
            return None
        path = self.trace_path(app, variant)
        if not path.exists():
            self.counters.trace_misses += 1
            return None
        try:
            stored_format = trace_format(path)
            trace = load_trace_columnar(path)
        except (ReproError, OSError, ValueError):
            self._evict(path)
            self.counters.trace_misses += 1
            return None
        if stored_format != TRACE_FORMAT_VERSION:
            self._atomic_write(path, lambda tmp: save_trace_v3(tmp, trace))
        self.counters.trace_hits += 1
        return trace

    def load_trace_segments(self, app: str, variant: str):
        """A lazy segment iterator over the cached trace, or None.

        v3 entries stream frame by frame with O(segment) live memory
        (legacy entries are upgraded to v3 first, through
        :meth:`load_trace`'s rewrite-on-read, then streamed). Structural
        problems surface as an eviction + miss exactly like
        :meth:`load_trace` — but note that per-segment corruption in a
        lazy stream can only be detected when the bad frame is reached,
        so consumers see :class:`~repro.errors.InterpreterError` from
        the iterator in that (already-digest-checked, hence vanishingly
        rare) case.
        """
        if not self.enabled:
            return None
        path = self.trace_path(app, variant)
        if not path.exists():
            self.counters.trace_misses += 1
            return None
        try:
            if trace_format(path) != TRACE_FORMAT_VERSION:
                # Legacy entry: materialise + rewrite as v3, then
                # stream the (now segmented) file.
                if self.load_trace(app, variant) is None:
                    return None
                self.counters.trace_hits -= 1  # counted below
            segments = open_trace_segments(path)
        except (ReproError, OSError, ValueError):
            self._evict(path)
            self.counters.trace_misses += 1
            return None
        self.counters.trace_hits += 1
        return segments

    def store_trace(
        self, app: str, variant: str, events: Trace | list[TraceEvent]
    ) -> None:
        if not self.enabled:
            return
        path = self.trace_path(app, variant)
        self._atomic_write(path, lambda tmp: save_trace_v3(tmp, events))

    def store_trace_segments(self, app: str, variant: str, segments) -> None:
        """Persist an iterator of segments with O(segment) memory."""
        if not self.enabled:
            return
        path = self.trace_path(app, variant)
        self._atomic_write(path, lambda tmp: save_trace_v3(tmp, segments))

    # -- results -----------------------------------------------------------

    def load_result_payload(
        self, app: str, variant: str, config_digest: str
    ) -> dict | None:
        """The stored result dict, or None. Malformed JSON is evicted.

        Schema-level validation happens in the engine; it reports
        deeper corruption back through :meth:`evict_result`.
        """
        if not self.enabled:
            return None
        path = self.result_path(app, variant, config_digest)
        if not path.exists():
            self.counters.result_misses += 1
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("result payload is not an object")
        except (OSError, ValueError):
            self._evict(path)
            self.counters.result_misses += 1
            return None
        self.counters.result_hits += 1
        return payload

    def store_result_payload(
        self, app: str, variant: str, config_digest: str, payload: dict
    ) -> None:
        if not self.enabled:
            return
        path = self.result_path(app, variant, config_digest)
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self._atomic_write(
            path, lambda tmp: Path(tmp).write_text(text, encoding="utf-8")
        )

    def evict_result(self, app: str, variant: str, config_digest: str) -> None:
        """Drop one result entry (deep corruption found by the engine)."""
        if self.enabled:
            self._evict(self.result_path(app, variant, config_digest))
            self.counters.result_misses += 1

    # -- maintenance -------------------------------------------------------

    def stats(self) -> dict:
        """Entry counts and on-disk footprint, for ``repro cache stats``.

        In-flight ``.tmp-*`` files are excluded from both the entry
        counts and ``total_bytes`` (they are scratch, not entries), and
        the walk tolerates files vanishing under it (a concurrent
        worker's ``os.replace``).
        """
        traces = results = total_bytes = quarantined = 0
        if self.enabled and self.version_root.exists():
            for path in _iter_files(self.version_root):
                if _is_tmp(path):
                    continue
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue  # vanished mid-scan (concurrent os.replace)
                if path.suffix == ".trace":
                    traces += 1
                elif path.suffix == ".json":
                    results += 1
        if self.enabled and self.quarantine_root.exists():
            quarantined = sum(
                1 for _ in _iter_files(self.quarantine_root)
            )
        return {
            "enabled": self.enabled,
            "cache_dir": str(self.root) if self.enabled else None,
            "schema_version": CACHE_SCHEMA_VERSION,
            "trace_format": TRACE_FORMAT_VERSION,
            "trace_entries": traces,
            "result_entries": results,
            "quarantine_entries": quarantined,
            "total_bytes": total_bytes,
            "counters": self.counters.to_dict(),
        }

    def clear(self) -> int:
        """Delete every entry (all schema versions); returns files removed.

        Tolerant of concurrent workers: a path that vanishes mid-walk is
        skipped, and a directory that gains a new file between the walk
        and its ``rmdir`` is left in place rather than raising.
        """
        if not self.enabled or not self.root.exists():
            return 0
        removed = 0
        for path in sorted(self.root.rglob("*"), reverse=True):
            try:
                if path.is_dir():
                    path.rmdir()
                else:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    def gc(self, tmp_max_age_seconds: float = 0.0) -> dict:
        """Self-heal the store; returns a report dict.

        * removes orphaned ``.tmp-*`` files (left by killed workers)
          older than ``tmp_max_age_seconds``;
        * validates every trace/result entry under the active schema
          root and quarantines the corrupt ones (counted in
          ``counters.quarantined``); unknown file types are left alone.
        """
        report = {"tmp_removed": 0, "scanned": 0, "quarantined": 0}
        if not self.enabled or not self.root.exists():
            return report
        now = time.time()
        quarantine_root = self.quarantine_root
        for path in list(_iter_files(self.root)):
            if quarantine_root in path.parents:
                continue
            try:
                if _is_tmp(path):
                    if now - path.stat().st_mtime >= tmp_max_age_seconds:
                        path.unlink()
                        report["tmp_removed"] += 1
                    continue
            except OSError:
                continue
            valid = self._entry_is_valid(path)
            if valid is None:
                continue  # vanished mid-scan: not an entry, not corrupt
            report["scanned"] += 1
            if not valid:
                self._quarantine(path)
                report["quarantined"] += 1
        return report

    # -- internals ---------------------------------------------------------

    def _atomic_write(self, path: Path, write) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}{tmp_suffix()}")
        try:
            write(tmp)
            os.replace(tmp, path)
        except OSError:
            # Cache writes are best-effort; a full/readonly disk must
            # not fail the simulation that produced the data.
            tmp.unlink(missing_ok=True)

    def _entry_is_valid(self, path: Path) -> bool | None:
        """Whether a stored entry deserializes cleanly (for :meth:`gc`).

        ``None`` means the file vanished before it could be judged —
        a concurrent writer's ``os.replace``/``unlink``, not corruption,
        so the caller must neither quarantine nor count it.
        """
        try:
            if path.suffix == ".trace":
                load_trace_columnar(path)
            elif path.suffix == ".json":
                payload = json.loads(path.read_text(encoding="utf-8"))
                if not isinstance(payload, dict):
                    return False
            return True
        except (ReproError, OSError, ValueError):
            if not path.exists():
                return None
            return False

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside: keep the evidence, free the slot."""
        try:
            relative = path.relative_to(self.root)
        except ValueError:
            relative = Path(path.name)
        destination = self.quarantine_root / relative
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            final = destination
            suffix = 0
            while final.exists():
                suffix += 1
                final = destination.with_name(f"{destination.name}.{suffix}")
            os.replace(path, final)
            self.counters.quarantined += 1
        except OSError:
            # Quarantine is best-effort; the slot must be freed either way.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def _evict(self, path: Path) -> None:
        """Quarantine a corrupt entry and count the eviction."""
        self._quarantine(path)
        self.counters.evictions += 1


_active_cache: PersistentCache | None = None


def active_cache() -> PersistentCache:
    """The process-wide cache (created from the environment on first use)."""
    global _active_cache
    if _active_cache is None:
        _active_cache = PersistentCache(default_cache_dir())
    return _active_cache


def use_cache_dir(root: Path | str | None) -> PersistentCache:
    """Re-point the process-wide cache (None disables persistence)."""
    global _active_cache
    _active_cache = PersistentCache(root)
    return _active_cache


def use_cache(cache: PersistentCache) -> PersistentCache:
    """Install a specific cache instance process-wide.

    The service layer's :class:`~repro.service.remote.SharedCache` is a
    ``PersistentCache`` subclass; workers that should read through a
    remote tier install their instance here so the perf-layer trace
    store (which persists via :func:`active_cache`) sees it too.
    """
    global _active_cache
    _active_cache = cache
    return _active_cache
