"""Engine telemetry: per-point wall time, cache traffic, simulated MIPS.

Telemetry is collected out-of-band from the experiment data so that a
parallel run renders byte-identically to a serial one: wall times go in
the telemetry report (tables / JSON summary), never in
:meth:`ExperimentResult.render` output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.cache import CacheCounters
from repro.perf.report import Table

#: Where a point's result came from.
SOURCE_MEMO = "memo"
SOURCE_DISK = "disk"
SOURCE_SIMULATED = "simulated"


@dataclass
class PointRecord:
    """One design point's execution record."""

    app: str
    variant: str
    config_digest: str  # short form
    wall_seconds: float
    instructions: int
    source: str  # memo | disk | simulated

    @property
    def mips(self) -> float:
        """Simulated megainstructions per second of wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instructions / self.wall_seconds / 1e6

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "variant": self.variant,
            "config": self.config_digest,
            "wall_seconds": self.wall_seconds,
            "instructions": self.instructions,
            "mips": self.mips,
            "source": self.source,
        }


@dataclass
class EngineStats:
    """Aggregated engine telemetry (mergeable across worker processes)."""

    points: list[PointRecord] = field(default_factory=list)
    memo_hits: int = 0
    cache: CacheCounters = field(default_factory=CacheCounters)
    jobs: int = 1

    def record(self, point: PointRecord) -> None:
        self.points.append(point)

    def merge(self, other: "EngineStats") -> None:
        """Fold a worker's telemetry into this one."""
        self.points.extend(other.points)
        self.memo_hits += other.memo_hits
        self.cache.merge(other.cache)

    @property
    def total_wall_seconds(self) -> float:
        return sum(point.wall_seconds for point in self.points)

    @property
    def total_instructions(self) -> int:
        return sum(point.instructions for point in self.points)

    @property
    def aggregate_mips(self) -> float:
        wall = self.total_wall_seconds
        if wall <= 0.0:
            return 0.0
        return self.total_instructions / wall / 1e6

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "jobs": self.jobs,
            "points": [point.to_dict() for point in self.points],
            "cache": {**self.cache.to_dict(), "memo_hits": self.memo_hits},
            "totals": {
                "points": len(self.points),
                "wall_seconds": self.total_wall_seconds,
                "instructions": self.total_instructions,
                "mips": self.aggregate_mips,
            },
        }

    def write_json(self, path: str | Path) -> None:
        """Machine-readable summary for benchmark/CI harnesses."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def render(self, per_point: bool = False) -> str:
        """Human-readable telemetry report."""
        summary = Table(
            "Engine telemetry",
            ["Points", "Simulated", "Disk hits", "Memo hits", "Wall (s)",
             "Sim MIPS"],
        )
        simulated = sum(
            1 for point in self.points if point.source == SOURCE_SIMULATED
        )
        disk = sum(1 for point in self.points if point.source == SOURCE_DISK)
        summary.add_row(
            len(self.points),
            simulated,
            disk,
            self.memo_hits,
            f"{self.total_wall_seconds:.2f}",
            f"{self.aggregate_mips:.2f}",
        )
        blocks = [summary.render()]
        if per_point and self.points:
            table = Table(
                "Per-point engine telemetry",
                ["App", "Variant", "Config", "Source", "Wall (s)",
                 "Instructions", "Sim MIPS"],
            )
            for point in self.points:
                table.add_row(
                    point.app,
                    point.variant,
                    point.config_digest,
                    point.source,
                    f"{point.wall_seconds:.3f}",
                    point.instructions,
                    f"{point.mips:.2f}",
                )
            blocks.append(table.render())
        return "\n\n".join(blocks)
