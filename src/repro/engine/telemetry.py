"""Engine telemetry: per-point wall time, cache traffic, simulated MIPS.

Telemetry is collected out-of-band from the experiment data so that a
parallel run renders byte-identically to a serial one: wall times go in
the telemetry report (tables / JSON summary), never in
:meth:`ExperimentResult.render` output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.cache import CacheCounters
from repro.perf.report import Table

#: Where a point's result came from.
SOURCE_MEMO = "memo"
SOURCE_DISK = "disk"
SOURCE_SIMULATED = "simulated"
SOURCE_JOURNAL = "journal"  # replayed from a run journal during resume

#: How a point failed (``PointFailure.kind``).
FAILURE_EXCEPTION = "exception"  # the worker raised
FAILURE_CRASH = "crash"          # the worker process died (BrokenProcessPool)
FAILURE_TIMEOUT = "timeout"      # the point exceeded its deadline


@dataclass
class PointFailure:
    """One design point that failed after exhausting its retries."""

    app: str
    variant: str
    config_digest: str  # short form
    kind: str  # exception | crash | timeout
    error_type: str
    message: str
    traceback: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "variant": self.variant,
            "config": self.config_digest,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }


@dataclass
class PointRecord:
    """One design point's execution record."""

    app: str
    variant: str
    config_digest: str  # short form
    wall_seconds: float
    instructions: int
    source: str  # memo | disk | simulated

    @property
    def mips(self) -> float:
        """Simulated megainstructions per second of wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instructions / self.wall_seconds / 1e6

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "variant": self.variant,
            "config": self.config_digest,
            "wall_seconds": self.wall_seconds,
            "instructions": self.instructions,
            "mips": self.mips,
            "source": self.source,
        }


@dataclass
class EngineStats:
    """Aggregated engine telemetry (mergeable across worker processes)."""

    points: list[PointRecord] = field(default_factory=list)
    failures: list[PointFailure] = field(default_factory=list)
    memo_hits: int = 0
    cache: CacheCounters = field(default_factory=CacheCounters)
    jobs: int = 1
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    #: Execution-context caveats (for instance "timeouts not enforced
    #: on the serial path"), deduplicated, preserved across merges.
    notes: list[str] = field(default_factory=list)
    #: Batched simulation: per-group point counts for the groups that
    #: actually ran through ``simulate_batched`` (memo/disk hits are
    #: peeled off first and never appear here).
    batch_sizes: list[int] = field(default_factory=list)
    #: Points that took the shared-frontend batched replay.
    batch_vectorized: int = 0
    #: Points inside a batch that fell back to scalar ``Core.simulate``.
    batch_fallback: int = 0
    #: Trace decodes avoided by the scheduler's per-sweep prewarm: for
    #: every group of pending points sharing a workload trace, all but
    #: the first reuse the in-memory decode instead of re-inflating the
    #: tracestore blob.
    decode_reuse_hits: int = 0
    #: Streaming simulation (``REPRO_STREAM``): pipelined
    #: generate→simulate runs that went through ``repro.perf.stream``.
    stream_streams: int = 0
    stream_segments_produced: int = 0
    stream_segments_consumed: int = 0
    #: Deepest the bounded producer/consumer queue ever got.
    stream_queue_peak: int = 0
    #: Carried-state segment handoffs into streaming consumers.
    stream_handoffs: int = 0
    #: Largest single in-flight segment (packed column bytes).
    stream_peak_segment_bytes: int = 0
    #: Sweep service (``repro.service``): confirmed lease claims this
    #: worker/aggregation won.
    claims: int = 0
    #: Claim bids that lost the file-order race to another worker.
    claim_conflicts: int = 0
    #: Claims that took over another worker's expired lease
    #: (crash-recovery steals).
    claim_steals: int = 0
    #: Lease renewals appended while points simulated.
    heartbeats: int = 0
    #: Completions suppressed because ownership was lost mid-compute.
    lost_leases: int = 0
    #: Network resilience (``repro.service.resilience``, schema 7):
    #: remote calls that were retried after a transient failure.
    net_retries: int = 0
    #: Times a circuit breaker tripped open.
    breaker_trips: int = 0
    #: Total wall time any breaker spent away from ``closed``
    #: (local-only degraded operation).
    degraded_seconds: float = 0.0
    #: Shared-cache remote tier traffic.
    remote_hits: int = 0
    remote_misses: int = 0
    remote_pushes: int = 0
    #: Pushes still parked for a dead remote when stats were read.
    queued_pushes: int = 0
    #: Parked pushes that replicated after the circuit recovered.
    drained_pushes: int = 0
    #: Accelerator offload (``repro.accel``, schema 8): estimates served
    #: (disk, simulated, or journal-replayed — memo hits excluded, same
    #: as core points).
    accel_points: int = 0
    #: Accelerator estimates that shared a workload-batch construction
    #: inside ``estimate_many`` (the accel analogue of batched sims).
    accel_batched: int = 0
    accel_bioseal_points: int = 0
    accel_aphmm_points: int = 0
    #: Host-equivalent cycles the served estimates priced.
    accel_offload_cycles: int = 0
    #: Host cycles of that total spent on host<->device data movement.
    accel_transfer_cycles: int = 0

    def record(self, point: PointRecord) -> None:
        self.points.append(point)

    def record_failure(self, failure: PointFailure) -> None:
        self.failures.append(failure)

    def note(self, message: str) -> None:
        """Attach a caveat once (repeats are dropped)."""
        if message not in self.notes:
            self.notes.append(message)

    def merge(self, other: "EngineStats") -> None:
        """Fold a worker's telemetry into this one."""
        self.points.extend(other.points)
        self.failures.extend(other.failures)
        self.memo_hits += other.memo_hits
        self.cache.merge(other.cache)
        self.pool_rebuilds += other.pool_rebuilds
        self.serial_fallbacks += other.serial_fallbacks
        self.batch_sizes.extend(other.batch_sizes)
        self.batch_vectorized += other.batch_vectorized
        self.batch_fallback += other.batch_fallback
        self.decode_reuse_hits += other.decode_reuse_hits
        self.stream_streams += other.stream_streams
        self.stream_segments_produced += other.stream_segments_produced
        self.stream_segments_consumed += other.stream_segments_consumed
        self.stream_queue_peak = max(
            self.stream_queue_peak, other.stream_queue_peak
        )
        self.stream_handoffs += other.stream_handoffs
        self.stream_peak_segment_bytes = max(
            self.stream_peak_segment_bytes, other.stream_peak_segment_bytes
        )
        self.claims += other.claims
        self.claim_conflicts += other.claim_conflicts
        self.claim_steals += other.claim_steals
        self.heartbeats += other.heartbeats
        self.lost_leases += other.lost_leases
        self.net_retries += other.net_retries
        self.breaker_trips += other.breaker_trips
        self.degraded_seconds += other.degraded_seconds
        self.remote_hits += other.remote_hits
        self.remote_misses += other.remote_misses
        self.remote_pushes += other.remote_pushes
        self.queued_pushes += other.queued_pushes
        self.drained_pushes += other.drained_pushes
        self.accel_points += other.accel_points
        self.accel_batched += other.accel_batched
        self.accel_bioseal_points += other.accel_bioseal_points
        self.accel_aphmm_points += other.accel_aphmm_points
        self.accel_offload_cycles += other.accel_offload_cycles
        self.accel_transfer_cycles += other.accel_transfer_cycles
        for message in other.notes:
            self.note(message)

    def merge_stream(self, stream: dict) -> None:
        """Fold a drained ``StreamStats`` payload (dict form) into this."""
        self.stream_streams += stream.get("streams", 0)
        self.stream_segments_produced += stream.get("segments_produced", 0)
        self.stream_segments_consumed += stream.get("segments_consumed", 0)
        self.stream_queue_peak = max(
            self.stream_queue_peak, stream.get("queue_peak", 0)
        )
        self.stream_handoffs += stream.get("handoffs", 0)
        self.stream_peak_segment_bytes = max(
            self.stream_peak_segment_bytes,
            stream.get("peak_segment_bytes", 0),
        )

    @property
    def total_wall_seconds(self) -> float:
        return sum(point.wall_seconds for point in self.points)

    @property
    def total_instructions(self) -> int:
        return sum(point.instructions for point in self.points)

    @property
    def aggregate_mips(self) -> float:
        wall = self.total_wall_seconds
        if wall <= 0.0:
            return 0.0
        return self.total_instructions / wall / 1e6

    @property
    def batched_points(self) -> int:
        """Points simulated inside batched groups (vectorized + fallback)."""
        return sum(self.batch_sizes)

    def merge_service(self, service: dict) -> None:
        """Fold a worker's journaled ``worker_stats`` counters into this."""
        self.claims += service.get("claims", 0)
        self.claim_conflicts += service.get("claim_conflicts", 0)
        self.claim_steals += service.get("claim_steals", 0)
        self.heartbeats += service.get("heartbeats", 0)
        self.lost_leases += service.get("lost_leases", 0)
        self.merge_resilience(service)

    def merge_accel(self, counters: dict) -> None:
        """Fold a journaled ``accel_stats`` payload into this.

        Tolerant of missing keys the same way the other journal folds
        are: a journal written before the accelerator subsystem simply
        contributes nothing.
        """
        self.accel_points += counters.get("points", 0)
        self.accel_batched += counters.get("batched", 0)
        self.accel_bioseal_points += counters.get("bioseal_points", 0)
        self.accel_aphmm_points += counters.get("aphmm_points", 0)
        self.accel_offload_cycles += counters.get("offload_cycles", 0)
        self.accel_transfer_cycles += counters.get("transfer_cycles", 0)

    def merge_resilience(self, counters: dict) -> None:
        """Fold a resilience counter payload (networked workers journal
        one, with ``degraded_ms`` as an integer) into this."""
        self.net_retries += counters.get("net_retries", 0)
        self.breaker_trips += counters.get("breaker_trips", 0)
        if "degraded_ms" in counters:
            self.degraded_seconds += counters["degraded_ms"] / 1000.0
        else:
            self.degraded_seconds += counters.get("degraded_seconds", 0.0)
        self.remote_hits += counters.get("remote_hits", 0)
        self.remote_misses += counters.get("remote_misses", 0)
        self.remote_pushes += counters.get("remote_pushes", 0)
        self.queued_pushes += counters.get("queued_pushes", 0)
        self.drained_pushes += counters.get("drained_pushes", 0)

    def to_dict(self) -> dict:
        return {
            "schema": 8,
            "jobs": self.jobs,
            "points": [point.to_dict() for point in self.points],
            "failures": [failure.to_dict() for failure in self.failures],
            "cache": {**self.cache.to_dict(), "memo_hits": self.memo_hits},
            "notes": list(self.notes),
            "recovery": {
                "pool_rebuilds": self.pool_rebuilds,
                "serial_fallbacks": self.serial_fallbacks,
            },
            "batch": {
                "groups": len(self.batch_sizes),
                "points": self.batched_points,
                "vectorized": self.batch_vectorized,
                "fallback": self.batch_fallback,
                "decode_reuse_hits": self.decode_reuse_hits,
                "sizes": list(self.batch_sizes),
            },
            "stream": {
                "streams": self.stream_streams,
                "segments_produced": self.stream_segments_produced,
                "segments_consumed": self.stream_segments_consumed,
                "queue_peak": self.stream_queue_peak,
                "handoffs": self.stream_handoffs,
                "peak_segment_bytes": self.stream_peak_segment_bytes,
            },
            "service": {
                "claims": self.claims,
                "claim_conflicts": self.claim_conflicts,
                "claim_steals": self.claim_steals,
                "heartbeats": self.heartbeats,
                "lost_leases": self.lost_leases,
            },
            "accel": {
                "points": self.accel_points,
                "batched": self.accel_batched,
                "bioseal_points": self.accel_bioseal_points,
                "aphmm_points": self.accel_aphmm_points,
                "offload_cycles": self.accel_offload_cycles,
                "transfer_cycles": self.accel_transfer_cycles,
            },
            "resilience": {
                "net_retries": self.net_retries,
                "breaker_trips": self.breaker_trips,
                "degraded_seconds": self.degraded_seconds,
                "remote_hits": self.remote_hits,
                "remote_misses": self.remote_misses,
                "remote_pushes": self.remote_pushes,
                "queued_pushes": self.queued_pushes,
                "drained_pushes": self.drained_pushes,
            },
            "totals": {
                "points": len(self.points),
                "failures": len(self.failures),
                "wall_seconds": self.total_wall_seconds,
                "instructions": self.total_instructions,
                "mips": self.aggregate_mips,
            },
        }

    def write_json(self, path: str | Path) -> None:
        """Machine-readable summary for benchmark/CI harnesses."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def render(self, per_point: bool = False) -> str:
        """Human-readable telemetry report."""
        summary = Table(
            "Engine telemetry",
            ["Points", "Simulated", "Disk hits", "Memo hits", "Failures",
             "Wall (s)", "Sim MIPS"],
        )
        simulated = sum(
            1 for point in self.points if point.source == SOURCE_SIMULATED
        )
        disk = sum(1 for point in self.points if point.source == SOURCE_DISK)
        summary.add_row(
            len(self.points),
            simulated,
            disk,
            self.memo_hits,
            len(self.failures),
            f"{self.total_wall_seconds:.2f}",
            f"{self.aggregate_mips:.2f}",
        )
        blocks = [summary.render()]
        if self.batch_sizes or self.decode_reuse_hits:
            batch = Table(
                "Batched simulation",
                ["Groups", "Batched points", "Vectorized", "Fallback",
                 "Decode reuse"],
            )
            batch.add_row(
                len(self.batch_sizes),
                self.batched_points,
                self.batch_vectorized,
                self.batch_fallback,
                self.decode_reuse_hits,
            )
            blocks.append(batch.render())
        if self.stream_streams:
            stream = Table(
                "Streaming simulation",
                ["Streams", "Segments", "Queue peak", "Handoffs",
                 "Peak segment (KiB)"],
            )
            stream.add_row(
                self.stream_streams,
                self.stream_segments_consumed,
                self.stream_queue_peak,
                self.stream_handoffs,
                f"{self.stream_peak_segment_bytes / 1024:.1f}",
            )
            blocks.append(stream.render())
        if self.accel_points:
            accel = Table(
                "Accelerator offload",
                ["Estimates", "Batched", "BioSEAL", "ApHMM",
                 "Host cycles", "Transfer cycles"],
            )
            accel.add_row(
                self.accel_points,
                self.accel_batched,
                self.accel_bioseal_points,
                self.accel_aphmm_points,
                self.accel_offload_cycles,
                self.accel_transfer_cycles,
            )
            blocks.append(accel.render())
        if self.claims or self.claim_conflicts or self.claim_steals:
            service = Table(
                "Sweep service",
                ["Claims", "Conflicts", "Steals", "Heartbeats",
                 "Lost leases"],
            )
            service.add_row(
                self.claims,
                self.claim_conflicts,
                self.claim_steals,
                self.heartbeats,
                self.lost_leases,
            )
            blocks.append(service.render())
        if (self.net_retries or self.breaker_trips or self.remote_hits
                or self.remote_pushes or self.queued_pushes
                or self.drained_pushes):
            resilience = Table(
                "Resilience",
                ["Retries", "Breaker trips", "Degraded (s)",
                 "Remote hits", "Remote pushes", "Queued", "Drained"],
            )
            resilience.add_row(
                self.net_retries,
                self.breaker_trips,
                f"{self.degraded_seconds:.2f}",
                self.remote_hits,
                self.remote_pushes,
                self.queued_pushes,
                self.drained_pushes,
            )
            blocks.append(resilience.render())
        if self.notes:
            blocks.append(
                "\n".join(f"note: {message}" for message in self.notes)
            )
        if self.failures:
            failed = Table(
                "Failed design points",
                ["App", "Variant", "Config", "Kind", "Error", "Attempts"],
            )
            for failure in self.failures:
                failed.add_row(
                    failure.app,
                    failure.variant,
                    failure.config_digest,
                    failure.kind,
                    failure.error_type,
                    failure.attempts,
                )
            blocks.append(failed.render())
        if per_point and self.points:
            table = Table(
                "Per-point engine telemetry",
                ["App", "Variant", "Config", "Source", "Wall (s)",
                 "Instructions", "Sim MIPS"],
            )
            for point in self.points:
                table.add_row(
                    point.app,
                    point.variant,
                    point.config_digest,
                    point.source,
                    f"{point.wall_seconds:.3f}",
                    point.instructions,
                    f"{point.mips:.2f}",
                )
            blocks.append(table.render())
        return "\n\n".join(blocks)
