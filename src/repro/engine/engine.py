"""The :class:`Engine`: cached, parallel design-point simulation.

Every simulation request flows through three layers:

1. an in-memory memo keyed by the canonical ``(app, variant,
   config-digest)`` key (not dataclass identity);
2. the persistent content-addressed cache (:mod:`repro.engine.cache`),
   which survives across processes and runs;
3. the real pipeline — :func:`repro.perf.characterize.characterize` —
   whose result is then persisted and memoised.

``default_engine()`` is the process-wide instance the experiment
drivers and the CLI share; it uses the process-wide persistent cache.
Constructing an :class:`Engine` with an explicit ``cache_dir`` gives
that engine its **own** private :class:`PersistentCache` — it never
re-points the process-wide one, so two engines' counters can never
alias. Re-pointing the global cache (which also backs the perf-layer
trace store) is an explicit act owned by the entry points:
``repro.engine.cache.use_cache_dir`` is called by the CLI's
``--cache-dir`` flags and by pool workers adopting the parent's cache
directory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.accel.config import AccelConfig
from repro.accel.lab import (
    AccelEstimate,
    accel_slot,
    estimate_many as accel_estimate_many,
    estimate_to_dict,
)
from repro.engine import serialize
from repro.engine.cache import PersistentCache, active_cache
from repro.engine.digest import (
    SHORT_DIGEST,
    config_digest,
    result_payload_digest,
    sim_source_digest,
)
from repro.engine.scheduler import fan_out
from repro.engine.telemetry import (
    SOURCE_DISK,
    SOURCE_JOURNAL,
    SOURCE_SIMULATED,
    EngineStats,
    PointRecord,
)
from repro.errors import WorkloadError
from repro.perf.characterize import AppCharacterisation, characterize
from repro.uarch.config import CoreConfig, power5

#: Sentinel: "use the environment-resolved cache directory".
_ENV = object()


class Engine:
    """Single entry point for (app, variant, config) simulations."""

    def __init__(self, cache_dir=_ENV, jobs: int | None = None) -> None:
        if cache_dir is _ENV:
            self.cache: PersistentCache = active_cache()
        else:
            # A private store: constructing an engine must never re-point
            # the process-wide cache under an earlier engine's feet.
            self.cache = PersistentCache(cache_dir)
        self.jobs = jobs
        self.stats = EngineStats()
        # Telemetry reports the live cache counters, not a copy.
        self.stats.cache = self.cache.counters
        self._memo: dict[tuple[str, str, str], AppCharacterisation] = {}

    # -- single points -----------------------------------------------------

    def characterize(
        self,
        app: str,
        variant: str = "baseline",
        config: CoreConfig | None = None,
    ) -> AppCharacterisation:
        """One design point, through memo -> disk -> simulation.

        ``config`` may be a :class:`CoreConfig` (a core simulation) or
        an :class:`~repro.accel.config.AccelConfig` (an accelerator
        estimate, persisted under the ``<variant>~accel`` result slot).
        Both flow through the same memo, telemetry, journal and
        scheduler machinery.
        """
        config = config or power5()
        digest = config_digest(config)
        key = (app, variant, digest)
        cached = self._memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached

        started = time.perf_counter()
        if isinstance(config, AccelConfig):
            slot = accel_slot(variant)
            result = self._load_persistent_accel(app, variant, digest)
            source = SOURCE_DISK
            if result is None:
                from repro.accel.lab import estimate as accel_estimate

                result = accel_estimate(app, variant, config)
                self.cache.store_result_payload(
                    app, slot, digest, estimate_to_dict(result),
                )
                source = SOURCE_SIMULATED
            self._note_accel(result)
        else:
            result = self._load_persistent(app, variant, digest)
            source = SOURCE_DISK
            if result is None:
                result = characterize(app, variant, config)
                self.cache.store_result_payload(
                    app, variant, digest,
                    serialize.characterisation_to_dict(result),
                )
                source = SOURCE_SIMULATED
                self._drain_stream()
        wall = time.perf_counter() - started

        self._memo[key] = result
        self.stats.record(PointRecord(
            app=app,
            variant=variant,
            config_digest=digest[:SHORT_DIGEST],
            wall_seconds=wall,
            instructions=result.merged.instructions,
            source=source,
        ))
        return result

    def characterize_batch(
        self,
        app: str,
        variant: str,
        configs: list[CoreConfig],
    ) -> list[AppCharacterisation]:
        """Many configs of one (app, variant), sharing a trace pass.

        Equivalent to calling :meth:`characterize` once per config — the
        memo and persistent cache are consulted per point first, every
        simulated result is persisted and memoised individually, and the
        telemetry carries one :class:`PointRecord` per point — but the
        points that do need simulation run through
        :func:`repro.perf.characterize.characterize_batched`, so their
        shared workload trace is decoded and frontend-walked once.

        Accelerator configs in the list are peeled off and served
        through :func:`repro.accel.lab.estimate_many` (one workload
        batch construction per input class); core and accelerator
        points may mix freely in one call.
        """
        from repro.perf.characterize import characterize_batched

        accel_indices = [
            index for index, config in enumerate(configs)
            if isinstance(config, AccelConfig)
        ]
        if accel_indices:
            results = [None] * len(configs)
            accel_set = set(accel_indices)
            core_indices = [
                index for index in range(len(configs))
                if index not in accel_set
            ]
            if core_indices:
                for index, result in zip(core_indices, self.characterize_batch(
                        app, variant,
                        [configs[index] for index in core_indices])):
                    results[index] = result
            for index, result in zip(accel_indices, self._accel_batch(
                    app, variant,
                    [configs[index] for index in accel_indices])):
                results[index] = result
            return results

        results: list[AppCharacterisation | None] = [None] * len(configs)
        digests = [config_digest(config) for config in configs]
        pending: list[int] = []
        for index, digest in enumerate(digests):
            key = (app, variant, digest)
            cached = self._memo.get(key)
            if cached is not None:
                self.stats.memo_hits += 1
                results[index] = cached
                continue
            started = time.perf_counter()
            disk = self._load_persistent(app, variant, digest)
            if disk is not None:
                self._memo[key] = disk
                self.stats.record(PointRecord(
                    app=app,
                    variant=variant,
                    config_digest=digest[:SHORT_DIGEST],
                    wall_seconds=time.perf_counter() - started,
                    instructions=disk.merged.instructions,
                    source=SOURCE_DISK,
                ))
                results[index] = disk
                continue
            pending.append(index)
        if pending:
            started = time.perf_counter()
            batch_results, info = characterize_batched(
                app, variant, [configs[index] for index in pending]
            )
            # One wall clock covers the whole batch; attribute it evenly
            # so per-point MIPS stays meaningful.
            wall = (time.perf_counter() - started) / len(pending)
            for index, result in zip(pending, batch_results):
                digest = digests[index]
                self.cache.store_result_payload(
                    app, variant, digest,
                    serialize.characterisation_to_dict(result),
                )
                self._memo[(app, variant, digest)] = result
                self.stats.record(PointRecord(
                    app=app,
                    variant=variant,
                    config_digest=digest[:SHORT_DIGEST],
                    wall_seconds=wall,
                    instructions=result.merged.instructions,
                    source=SOURCE_SIMULATED,
                ))
                results[index] = result
            self.stats.batch_sizes.append(len(pending))
            self.stats.batch_vectorized += info["vectorized"]
            self.stats.batch_fallback += info["fallback"]
            self._drain_stream()
        return results

    def _accel_batch(
        self,
        app: str,
        variant: str,
        configs: list[AccelConfig],
    ) -> list[AccelEstimate]:
        """Accelerator side of :meth:`characterize_batch`.

        Same per-point memo/disk/store discipline as the core path; the
        points that do need estimation share one workload-batch
        construction per input class through
        :func:`repro.accel.lab.estimate_many`.
        """
        slot = accel_slot(variant)
        results: list[AccelEstimate | None] = [None] * len(configs)
        digests = [config_digest(config) for config in configs]
        pending: list[int] = []
        for index, digest in enumerate(digests):
            key = (app, variant, digest)
            cached = self._memo.get(key)
            if cached is not None:
                self.stats.memo_hits += 1
                results[index] = cached
                continue
            started = time.perf_counter()
            disk = self._load_persistent_accel(app, variant, digest)
            if disk is not None:
                self._memo[key] = disk
                self._note_accel(disk)
                self.stats.record(PointRecord(
                    app=app,
                    variant=variant,
                    config_digest=digest[:SHORT_DIGEST],
                    wall_seconds=time.perf_counter() - started,
                    instructions=disk.merged.instructions,
                    source=SOURCE_DISK,
                ))
                results[index] = disk
                continue
            pending.append(index)
        if pending:
            started = time.perf_counter()
            estimates, info = accel_estimate_many(
                app, variant, [configs[index] for index in pending]
            )
            wall = (time.perf_counter() - started) / len(pending)
            for index, est in zip(pending, estimates):
                digest = digests[index]
                self.cache.store_result_payload(
                    app, slot, digest, estimate_to_dict(est),
                )
                self._memo[(app, variant, digest)] = est
                self._note_accel(est)
                self.stats.record(PointRecord(
                    app=app,
                    variant=variant,
                    config_digest=digest[:SHORT_DIGEST],
                    wall_seconds=wall,
                    instructions=est.merged.instructions,
                    source=SOURCE_SIMULATED,
                ))
                results[index] = est
            self.stats.accel_batched += info["shared"]
        return results

    def _load_persistent_accel(
        self, app: str, variant: str, digest: str
    ) -> AccelEstimate | None:
        """Load one accelerator estimate from its ``~accel`` slot.

        Strict like :meth:`_load_persistent`, plus an addressing check:
        an entry that decodes but describes a different point (or is not
        an accelerator payload at all) is corruption, evicted the same
        way a malformed one is.
        """
        slot = accel_slot(variant)
        payload = self.cache.load_result_payload(app, slot, digest)
        if payload is None:
            return None
        try:
            result = serialize.characterisation_from_dict(payload)
            if (not isinstance(result, AccelEstimate)
                    or result.app != app or result.variant != variant
                    or config_digest(result.config) != digest):
                raise ValueError("accel entry addresses a different point")
        except (KeyError, TypeError, ValueError):
            self.cache.evict_result(app, slot, digest)
            return None
        return result

    def _note_accel(self, est: AccelEstimate) -> None:
        """Fold one served accelerator estimate into the telemetry."""
        stats = self.stats
        stats.accel_points += 1
        if est.backend == "bioseal":
            stats.accel_bioseal_points += 1
        elif est.backend == "aphmm":
            stats.accel_aphmm_points += 1
        stats.accel_offload_cycles += est.result.host_cycles
        stats.accel_transfer_cycles += est.result.transfer_cycles

    def _drain_stream(self) -> None:
        """Fold finished streaming pipelines into this engine's stats."""
        from repro.perf.stream import drain_stream_stats

        drained = drain_stream_stats()
        if drained is not None:
            self.stats.merge_stream(drained.as_dict())

    def _load_persistent(
        self, app: str, variant: str, digest: str
    ) -> AppCharacterisation | None:
        payload = self.cache.load_result_payload(app, variant, digest)
        if payload is None:
            return None
        try:
            return serialize.characterisation_from_dict(payload)
        except (KeyError, TypeError, ValueError):
            # Structurally valid JSON with a wrong/damaged schema:
            # evict and resimulate.
            self.cache.evict_result(app, variant, digest)
            return None

    # -- fan-out -----------------------------------------------------------

    def characterize_many(
        self,
        points: list[tuple[str, str, CoreConfig]],
        jobs: int | None = None,
        *,
        on_error: str = "raise",
        timeout: float | None = None,
        retries: int | None = None,
        backoff: float | None = None,
        journal: bool = True,
        run_id: str | None = None,
        batch: bool | None = None,
    ) -> list[AppCharacterisation | None]:
        """Characterize a batch of points, in order, with fan-out.

        Fault tolerance knobs (see :mod:`repro.engine.scheduler`):
        ``timeout`` is the per-point deadline (``REPRO_POINT_TIMEOUT``),
        ``retries``/``backoff`` bound the per-point retry loop
        (``REPRO_POINT_RETRIES`` / ``REPRO_RETRY_BACKOFF``), and
        ``on_error`` picks the policy — ``"raise"`` aggregates the
        post-retry failures into a :class:`repro.errors.SweepError`,
        ``"keep_going"`` returns partial results with ``None`` in the
        failed points' slots.

        Durability: with ``journal=True`` (default) and persistence on,
        the sweep writes a crash-safe run journal and SIGINT/SIGTERM
        convert to :class:`repro.errors.SweepInterrupted`; an
        interrupted sweep continues via :meth:`resume`.

        ``batch`` controls batched multi-config simulation (grouping
        pending points that share a workload trace into one shared
        trace pass); ``None`` defers to ``REPRO_BATCH`` (default on).
        """
        return fan_out(
            self, points, jobs if jobs is not None else self.jobs,
            on_error=on_error, timeout=timeout, retries=retries,
            backoff=backoff, journal=journal, run_id=run_id,
            batch=batch,
        )

    def resume(
        self,
        run_id: str,
        jobs: int | None = None,
        *,
        on_error: str = "raise",
        timeout: float | None = None,
        retries: int | None = None,
        backoff: float | None = None,
        worker=None,
    ) -> "ResumeOutcome":
        """Continue an interrupted (or failed) journaled sweep.

        Reads ``runs/<run_id>.jsonl`` from this engine's cache
        directory, **re-verifies** every point the journal records as
        done — the persisted result must exist and its canonical
        payload digest must equal the digest journaled at completion
        time — and replays the verified points into the memo. Only the
        remainder (never-completed, failed, or verification-rejected
        points) flows through the fault-tolerant scheduler, appending
        to the same journal. The returned ordered results are therefore
        byte-identical to an uninterrupted run of the same sweep.

        A cached entry whose digest no longer matches the journal is
        quarantined and re-simulated. If the simulation sources changed
        since the journal was written, nothing is replayed (the cache
        is re-addressed by the new source digest) and the whole sweep
        re-runs — correct, just no longer warm.

        ``worker`` is an instrumentation hook (tests count worker
        invocations with it); production callers leave it ``None``.
        """
        from repro.engine import journal as journal_module

        if not self.cache.enabled:
            raise WorkloadError(
                "resume requires an enabled persistent cache "
                "(REPRO_CACHE=off disables journals too)"
            )
        state = journal_module.load_run(self.cache.root, run_id)
        if state.corrupt is not None:
            raise WorkloadError(
                f"journal for run {run_id!r} is corrupt "
                f"({state.corrupt}); refusing to resume from damaged "
                f"state"
            )
        if not state.points:
            raise WorkloadError(
                f"journal for run {run_id!r} has no run_start header; "
                "nothing to resume"
            )
        points = state.reconstruct_points()
        unique_keys = state.unique_keys
        # Accelerator results persist under the ``<variant>~accel``
        # slot; map each journaled key to the slot its payload lives in.
        slots = {
            (papp, pvariant, config_digest(pconfig)): (
                accel_slot(pvariant)
                if isinstance(pconfig, AccelConfig) else pvariant
            )
            for papp, pvariant, pconfig in points
        }
        source_changed = state.source_digest != sim_source_digest()
        replayed = 0
        if source_changed:
            self.stats.note(
                "simulation sources changed since the journal was "
                "written; replay skipped, all points re-run"
            )
        else:
            for key, recorded_digest in state.done.items():
                if key not in set(unique_keys):
                    # A record for a point outside the header's sweep:
                    # ignore it rather than trusting a mismatched key.
                    continue
                if key in self._memo:
                    replayed += 1
                    continue
                app, variant, digest = key
                slot = slots.get(key, variant)
                started = time.perf_counter()
                payload = self.cache.load_result_payload(
                    app, slot, digest
                )
                if payload is None:
                    continue
                if result_payload_digest(payload) != recorded_digest:
                    # The cache diverged from what the journal saw:
                    # quarantine the entry and re-simulate the point.
                    self.cache.evict_result(app, slot, digest)
                    continue
                try:
                    result = serialize.characterisation_from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    self.cache.evict_result(app, slot, digest)
                    continue
                self._memo[key] = result
                if isinstance(result, AccelEstimate):
                    self._note_accel(result)
                self.stats.record(PointRecord(
                    app=app,
                    variant=variant,
                    config_digest=digest[:SHORT_DIGEST],
                    wall_seconds=time.perf_counter() - started,
                    instructions=result.merged.instructions,
                    source=SOURCE_JOURNAL,
                ))
                replayed += 1

        journal = journal_module.RunJournal.reopen(self.cache.root, run_id)
        results = fan_out(
            self, points, jobs if jobs is not None else self.jobs,
            on_error=on_error, timeout=timeout, retries=retries,
            backoff=backoff, worker=worker, journal=journal,
        )
        return ResumeOutcome(
            run_id=run_id,
            results=results,
            total_points=len(points),
            unique_points=len(unique_keys),
            replayed=replayed,
            submitted=len(unique_keys) - replayed,
            source_changed=source_changed,
        )

    def prefetch(
        self,
        points: list[tuple[str, str, CoreConfig]],
        jobs: int | None = None,
        *,
        on_error: str = "raise",
        batch: bool | None = None,
    ) -> None:
        """Populate the memo for ``points`` (drivers then run serially)."""
        self.characterize_many(points, jobs, on_error=on_error, batch=batch)

    def adopt(
        self,
        app: str,
        variant: str,
        config: CoreConfig,
        result: AppCharacterisation,
        stats: EngineStats | None = None,
    ) -> None:
        """Merge a worker-computed result (and its telemetry) back in.

        The worker persisted the entry to the shared cache directory
        already (when persistence is on); adopting keeps the parent's
        memo and telemetry coherent without a second disk round-trip.
        """
        self._memo[(app, variant, config_digest(config))] = result
        if stats is not None:
            self.stats.merge(stats)

    def memoised_results(self) -> list[AppCharacterisation]:
        """Every characterisation this engine currently holds in memory.

        The validation gate (:mod:`repro.validate`) checks these after
        a sweep; insertion order follows completion order.
        """
        return list(self._memo.values())

    def memoised_points(self) -> dict:
        """Memo snapshot keyed ``(app, variant, config_digest)``.

        The validation gate needs the configuration digest to decide
        which calibrated bands apply to a point.
        """
        return dict(self._memo)

    # -- maintenance -------------------------------------------------------

    def clear(self, persistent: bool = False) -> int:
        """Drop the memo; with ``persistent=True`` also the disk cache."""
        self._memo.clear()
        removed = 0
        if persistent:
            removed = self.cache.clear()
        return removed

    def cache_stats(self) -> dict:
        stats = self.cache.stats()
        stats["memo_entries"] = len(self._memo)
        return stats


@dataclass
class ResumeOutcome:
    """What :meth:`Engine.resume` did, for reporting."""

    run_id: str
    results: list = field(repr=False)
    total_points: int = 0
    unique_points: int = 0
    #: Journaled points replayed after digest re-verification.
    replayed: int = 0
    #: Points that went back through the scheduler (some may still be
    #: served from the persistent cache rather than re-simulated).
    submitted: int = 0
    source_changed: bool = False


_default_engine: Engine | None = None


def default_engine() -> Engine:
    """The process-wide engine shared by experiments and the CLI."""
    global _default_engine
    if _default_engine is None:
        _default_engine = Engine()
    return _default_engine
