"""The simulation engine: the single entry point for design-space runs.

Layers, bottom to top:

``digest``
    Canonical content digests — a :class:`~repro.uarch.config.CoreConfig`
    digest and a digest over every source file that can change a trace
    or a simulation result (kernels, compiler, ISA, bio inputs, core
    model). Cache keys are built from these, so editing any simulation
    source invalidates exactly the entries it could have changed.
``serialize``
    Lossless JSON round-tripping of :class:`SimResult` and
    :class:`AppCharacterisation` (integers end to end, so reloaded
    results are byte-identical to freshly simulated ones).
``cache``
    The persistent content-addressed store: kernel/background traces in
    :mod:`repro.isa.tracestore` format and characterisation results as
    JSON, under a versioned, configurable cache directory. Corrupted
    entries are evicted and regenerated, never fatal.
``telemetry``
    Per-point wall time, cache hit/miss counters and simulated-MIPS,
    renderable as a table or a machine-readable JSON summary.
``journal``
    Durable run journal: every journaled ``fan_out`` appends fsync'd
    JSONL records under ``<cache_dir>/runs/``, torn-tail tolerant on
    read, so an interrupted sweep is resumable (``repro resume``) with
    byte-identical merged results. See ``docs/resume.md``.
``scheduler``
    Fault-tolerant process-pool fan-out of design points (``--jobs N``
    / ``REPRO_JOBS``), with in-flight deduplication, per-point
    deadlines and bounded retries, ``BrokenProcessPool`` isolation
    (rebuild + resume), and graceful degradation to serial execution;
    parallel results are byte-identical to serial because every point
    is deterministic and computed on a fresh core.
``engine``
    :class:`Engine` ties the layers together; ``default_engine()`` is
    the process-wide instance the experiment drivers share.
"""

from repro.engine.cache import PersistentCache, active_cache, use_cache_dir
from repro.engine.digest import (
    CACHE_SCHEMA_VERSION,
    config_digest,
    sim_source_digest,
)
from repro.engine.engine import Engine, ResumeOutcome, default_engine
from repro.engine.journal import RunJournal, list_runs, load_run, prune_runs
from repro.engine.scheduler import resolve_jobs
from repro.engine.telemetry import EngineStats, PointFailure, PointRecord
from repro.errors import SweepError, SweepInterrupted

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "Engine",
    "EngineStats",
    "PersistentCache",
    "PointFailure",
    "PointRecord",
    "ResumeOutcome",
    "RunJournal",
    "SweepError",
    "SweepInterrupted",
    "active_cache",
    "config_digest",
    "default_engine",
    "list_runs",
    "load_run",
    "prune_runs",
    "resolve_jobs",
    "sim_source_digest",
    "use_cache_dir",
]
