"""Lossless JSON round-tripping of simulation results.

Every numeric field in :class:`~repro.uarch.core.SimResult` is an
integer, so the JSON round trip is exact: a result loaded from the
persistent cache renders byte-identically to one just simulated. The
schema is strict — unknown/missing fields raise, which the cache layer
treats as corruption and regenerates.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.perf.characterize import AppCharacterisation
from repro.uarch.btac import BtacStats
from repro.uarch.cache import CacheStats
from repro.uarch.config import BtacConfig, CacheConfig, CoreConfig, PredictorSpec
from repro.uarch.core import IntervalRecord, SimResult

_SIM_INT_FIELDS = (
    "instructions", "cycles", "branches", "conditional_branches",
    "taken_branches", "direction_mispredictions", "target_mispredictions",
    "taken_bubbles", "loads", "stores", "load_misses", "fxu_ops",
)
_BTAC_FIELDS = (
    "lookups", "hits", "predictions", "correct", "incorrect", "allocations",
)
_INTERVAL_FIELDS = (
    "start_instruction", "instructions", "cycles", "branches",
    "direction_mispredictions",
)


def result_to_dict(result: SimResult) -> dict:
    payload: dict = {name: getattr(result, name) for name in _SIM_INT_FIELDS}
    payload["stall_cycles"] = dict(result.stall_cycles)
    payload["cache"] = {
        "accesses": result.cache.accesses,
        "misses": result.cache.misses,
    }
    payload["btac"] = (
        None
        if result.btac is None
        else {name: getattr(result.btac, name) for name in _BTAC_FIELDS}
    )
    payload["intervals"] = [
        {name: getattr(record, name) for name in _INTERVAL_FIELDS}
        for record in result.intervals
    ]
    return payload


def result_from_dict(payload: dict) -> SimResult:
    result = SimResult(**{name: int(payload[name]) for name in _SIM_INT_FIELDS})
    # Results serialised before the dead "none" stall bucket was removed
    # may still carry it (always zero); drop it so old cache entries
    # compare equal to fresh simulations.
    result.stall_cycles = {
        str(key): int(value)
        for key, value in payload["stall_cycles"].items()
        if key != "none"
    }
    result.cache = CacheStats(
        accesses=int(payload["cache"]["accesses"]),
        misses=int(payload["cache"]["misses"]),
    )
    btac = payload["btac"]
    result.btac = (
        None
        if btac is None
        else BtacStats(**{name: int(btac[name]) for name in _BTAC_FIELDS})
    )
    result.intervals = [
        IntervalRecord(**{name: int(record[name]) for name in _INTERVAL_FIELDS})
        for record in payload["intervals"]
    ]
    return result


_CORE_INT_FIELDS = (
    "fetch_width", "commit_width", "pipeline_depth", "window", "fxu_count",
    "lsu_count", "bru_count", "taken_branch_penalty",
)


def config_to_dict(config: CoreConfig) -> dict:
    """Canonical nested-dict form of a core configuration.

    The same shape ``config_digest`` hashes, so a config journaled by
    a sweep reconstructs to a digest-identical :class:`CoreConfig`.
    """
    return asdict(config)


def config_from_dict(payload: dict):
    """Rebuild a journaled config (core or accelerator).

    Accelerator configs are discriminated by their ``backend`` field —
    no :class:`CoreConfig` payload has one. Strict like the result
    schema: unknown shapes raise ``KeyError`` / ``TypeError``, which
    journal consumers surface as corruption.
    """
    if "backend" in payload:
        from repro.accel.config import AccelConfig

        return AccelConfig(**{
            key: value if key in ("backend", "input_class") else int(value)
            for key, value in payload.items()
        })
    btac = payload["btac"]
    return CoreConfig(
        **{name: int(payload[name]) for name in _CORE_INT_FIELDS},
        predictor=PredictorSpec(
            kind=str(payload["predictor"]["kind"]),
            **{
                k: int(v)
                for k, v in payload["predictor"].items()
                if k != "kind"
            },
        ),
        btac=(
            None
            if btac is None
            else BtacConfig(**{k: int(v) for k, v in btac.items()})
        ),
        cache=CacheConfig(
            **{k: int(v) for k, v in payload["cache"].items()}
        ),
    )


def characterisation_to_dict(result) -> dict:
    """Canonical payload for a characterisation or accelerator estimate.

    Accelerator estimates serialize through :mod:`repro.accel.lab`;
    their payloads carry a ``backend`` key no
    :class:`AppCharacterisation` payload has, which is what
    :func:`characterisation_from_dict` dispatches on.
    """
    from repro.accel.lab import AccelEstimate, estimate_to_dict

    if isinstance(result, AccelEstimate):
        return estimate_to_dict(result)
    return {
        "app": result.app,
        "variant": result.variant,
        "kernel": (
            None if result.kernel is None else result_to_dict(result.kernel)
        ),
        "background": (
            None
            if result.background is None
            else result_to_dict(result.background)
        ),
        "merged": result_to_dict(result.merged),
        "baseline_instructions": result.baseline_instructions,
    }


def characterisation_from_dict(payload: dict):
    if "backend" in payload:
        from repro.accel.lab import estimate_from_dict

        return estimate_from_dict(payload)
    return AppCharacterisation(
        app=str(payload["app"]),
        variant=str(payload["variant"]),
        kernel=(
            None
            if payload["kernel"] is None
            else result_from_dict(payload["kernel"])
        ),
        background=(
            None
            if payload["background"] is None
            else result_from_dict(payload["background"])
        ),
        merged=result_from_dict(payload["merged"]),
        baseline_instructions=int(payload["baseline_instructions"]),
    )
