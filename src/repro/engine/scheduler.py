"""Fault-tolerant process-pool fan-out of design points.

The scheduler deduplicates in-flight keys (a sweep that names the same
(app, variant, config) twice simulates it once), fans the unique
pending points out over a ``concurrent.futures`` process pool, and
merges worker results — and worker telemetry — back into the parent
engine. Workers share the parent's persistent cache directory, so a
trace or result any worker generates is visible to every later run.

Unlike a plain ``pool.map``, one bad point cannot abort the sweep:

* every point is submitted as its own future and carries a deadline
  (``timeout`` / ``REPRO_POINT_TIMEOUT``; a hung worker is reclaimed by
  killing and rebuilding the pool);
* a worker exception, crash, or timeout is retried with exponential
  backoff up to ``retries`` (``REPRO_POINT_RETRIES``) extra attempts;
* a worker process dying (``BrokenProcessPool``) rebuilds the pool and
  resumes the remaining points; because the crash takes every in-flight
  future down with it, the victims are resubmitted **one at a time**
  (uncharged) so the culprit is identified exactly and innocent points
  are never billed for someone else's crash;
* if the pool keeps dying (more than ``max_rebuilds`` rebuilds) the
  remaining points degrade gracefully to serial in-process execution;
* points that still fail after retries become structured
  :class:`~repro.engine.telemetry.PointFailure` telemetry. Under
  ``on_error="raise"`` (the default) the sweep then raises
  :class:`~repro.errors.SweepError` naming exactly the failed points;
  under ``on_error="keep_going"`` the completed points are returned in
  input order with ``None`` in the failed slots.

Job count resolution: explicit argument, else the ``REPRO_JOBS``
environment variable, else ``os.cpu_count()``. The serial paths
(``jobs=1`` or a single pending unit) run in-process: retries and
failure records still apply, but timeouts are not enforced and a
hard-crashing point takes the parent down — use ``jobs >= 2`` when
fault isolation matters.

Batched multi-config simulation (``REPRO_BATCH``, default on): pending
points that share a workload trace — the same ``(app, variant)``, which
within one run is the trace-digest equivalence class
(:func:`group_by_trace`) — are dispatched as one :class:`_BatchTask`
whose worker decodes the trace once and drives every config through
:meth:`Engine.characterize_batch`. Results fan back into the memo, the
persistent cache and the run journal exactly as if each point ran
alone (byte-identical payloads, one ``point_done`` record per point).
A batch is never retried as a unit: any failure — worker exception,
crash, or deadline — explodes it back into its constituent points,
which then retry under the normal per-point policy, so a single bad
point can only ever fail itself. Sweeps with a custom ``worker`` (test
instrumentation) never batch. Independently of batching, every sweep
prewarms the in-memory trace decode once per trace-sharing group
before the pool forks, so non-batched workers inherit warm decodes
instead of re-inflating the same tracestore blob per point.

Parallel output is byte-identical to serial output because every point
is deterministic, simulated on a fresh core, and results are merged
back by key (never by completion order).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.errors import SweepError, SweepInterrupted, WorkloadError
from repro.uarch.config import CoreConfig

#: Error policies for :func:`fan_out`.
ON_ERROR_RAISE = "raise"
ON_ERROR_KEEP_GOING = "keep_going"

#: Default bounded-retry / backoff / rebuild knobs (env-overridable).
DEFAULT_RETRIES = 1
DEFAULT_BACKOFF_SECONDS = 0.05
DEFAULT_MAX_REBUILDS = 3

#: How often the pool loop wakes to check for a delivered SIGINT/SIGTERM
#: when graceful-interrupt handlers are installed (a signal interrupts
#: ``wait`` but cannot make it return early, so the loop polls).
_INTERRUPT_POLL_SECONDS = 0.25

#: Telemetry/SweepError caveat for the in-process execution path.
SERIAL_TIMEOUT_NOTE = (
    "serial path (jobs=1 or a single pending point): per-point timeouts "
    "are not enforced, so a hang is the design point itself, not a "
    "scheduler fault; use jobs >= 2 to enforce deadlines"
)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise WorkloadError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise WorkloadError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_timeout(timeout: float | None = None) -> float | None:
    """Per-point deadline in seconds: explicit > ``REPRO_POINT_TIMEOUT``.

    ``None`` or a non-positive value disables the deadline.
    """
    if timeout is None:
        env = os.environ.get("REPRO_POINT_TIMEOUT", "").strip()
        if env:
            try:
                timeout = float(env)
            except ValueError:
                raise WorkloadError(
                    f"REPRO_POINT_TIMEOUT must be a number, got {env!r}"
                ) from None
    if timeout is not None and timeout <= 0:
        return None
    return timeout


def resolve_retries(retries: int | None = None) -> int:
    """Extra attempts per point: explicit > ``REPRO_POINT_RETRIES`` > 1."""
    if retries is None:
        env = os.environ.get("REPRO_POINT_RETRIES", "").strip()
        if env:
            try:
                retries = int(env)
            except ValueError:
                raise WorkloadError(
                    f"REPRO_POINT_RETRIES must be an integer, got {env!r}"
                ) from None
        else:
            retries = DEFAULT_RETRIES
    if retries < 0:
        raise WorkloadError(f"retries must be >= 0, got {retries}")
    return retries


def resolve_backoff(backoff: float | None = None) -> float:
    """Base retry backoff in seconds: explicit > ``REPRO_RETRY_BACKOFF``."""
    if backoff is None:
        env = os.environ.get("REPRO_RETRY_BACKOFF", "").strip()
        if env:
            try:
                backoff = float(env)
            except ValueError:
                raise WorkloadError(
                    f"REPRO_RETRY_BACKOFF must be a number, got {env!r}"
                ) from None
        else:
            backoff = DEFAULT_BACKOFF_SECONDS
    if backoff < 0:
        raise WorkloadError(f"backoff must be >= 0, got {backoff}")
    return backoff


def resolve_batch(batch: bool | None = None) -> bool:
    """Batched simulation switch: explicit > ``REPRO_BATCH`` > on.

    ``REPRO_BATCH=off`` (also ``0`` / ``false`` / ``no``) disables
    trace-sharing batch dispatch; anything else leaves it enabled.
    """
    if batch is not None:
        return batch
    env = os.environ.get("REPRO_BATCH", "").strip().lower()
    return env not in ("off", "0", "false", "no")


def group_by_trace(tasks) -> dict:
    """Group pending tasks by the workload trace their points replay.

    Two design points share a trace pass iff they name the same
    ``(app, variant)`` pair: the trace store content-addresses traces
    by workload and source digest, so within a single run the pair *is*
    the trace-digest equivalence class. Returns
    ``{(app, variant): [task, ...]}`` in first-seen order.
    """
    groups: dict = {}
    for task in tasks:
        app, variant, _ = task.point
        groups.setdefault((app, variant), []).append(task)
    return groups


def _prewarm_traces(tasks, engine) -> None:
    """Decode each trace-sharing group's workload trace exactly once.

    Runs in the parent before the pool is created, so forked workers
    inherit the warm in-memory decode instead of each re-inflating the
    same tracestore blob. Failures are swallowed: an unknown app or
    variant must surface later as that *point's* failure, not abort the
    sweep during warming.
    """
    from repro.accel.config import AccelConfig
    from repro.perf.characterize import background_trace, kernel_trace

    for (app, variant), group in group_by_trace(tasks).items():
        # Accelerator points never replay a workload trace — warming
        # one for them would pay the decode for nothing.
        group = [
            task for task in group
            if not isinstance(task.point[2], AccelConfig)
        ]
        if not group:
            continue
        try:
            kernel_trace(app, variant)
            background_trace(app)
        except Exception:
            continue
        engine.stats.decode_reuse_hits += len(group) - 1


def _pool_context():
    """Prefer fork (workers inherit warm in-memory trace caches)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _worker_init(graceful_parent: bool) -> None:
    """Reset signal disposition in pool workers.

    Forked workers inherit whatever handlers the parent had at fork
    time — including :class:`_InterruptWatch`'s graceful SIGTERM
    handler, which merely sets a flag and would make workers immune to
    ``Process.terminate()``. Workers must always die on SIGTERM (that
    is how hung or orphaned workers are reclaimed). Under a graceful
    parent they additionally ignore SIGINT: a terminal Ctrl-C goes to
    the whole process group, and the *parent* decides how to stop.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    if graceful_parent:
        signal.signal(signal.SIGINT, signal.SIG_IGN)


def _characterize_worker(task):
    """Run one design point in a worker process (module-level: picklable).

    The worker re-points its process-wide cache at the parent's
    directory explicitly (the perf-layer trace store persists through
    the process-wide cache, not the engine's private one), then runs the
    point on a process-wide-cache-backed engine so trace and result
    counters both land in the returned telemetry.
    """
    app, variant, config, cache_root = task
    from repro.engine.cache import use_cache_dir
    from repro.engine.engine import Engine

    use_cache_dir(cache_root)
    engine = Engine()
    result = engine.characterize(app, variant, config)
    return app, variant, config, result, engine.stats


def _characterize_batch_worker(task):
    """Run one trace-sharing batch in a worker process (picklable).

    Mirrors :func:`_characterize_worker` but drives every config of the
    group through :meth:`Engine.characterize_batch`, so the shared
    workload trace is decoded and frontend-walked once for the whole
    batch. Returns the ordered results plus the worker's telemetry
    (one :class:`PointRecord` per point, batch counters included).
    """
    app, variant, configs, cache_root = task
    from repro.engine.cache import use_cache_dir
    from repro.engine.engine import Engine

    use_cache_dir(cache_root)
    engine = Engine()
    results = engine.characterize_batch(app, variant, list(configs))
    return app, variant, results, engine.stats


class _Task:
    """One pending point's scheduling state."""

    __slots__ = ("key", "point", "attempts")

    def __init__(self, key, point):
        self.key = key
        self.point = point
        self.attempts = 0


class _BatchTask:
    """Scheduling state for one trace-sharing group of pending points.

    Dispatched as a single unit through
    :func:`_characterize_batch_worker` (pool) or
    :meth:`Engine.characterize_batch` (serial). Never retried as a
    unit: any failure explodes the batch back into its constituent
    :class:`_Task` objects, which retry under the normal per-point
    policy — so batching can change throughput but never which points
    succeed or fail.
    """

    __slots__ = ("key", "app", "variant", "tasks", "attempts")

    def __init__(self, app, variant, tasks):
        self.key = ("batch", app, variant)
        self.app = app
        self.variant = variant
        self.tasks = tasks
        self.attempts = 0


def _batch_tasks(tasks) -> list:
    """Fold trace-sharing groups of two or more points into batches.

    Singleton groups stay plain :class:`_Task`s — there is nothing to
    share, and the scalar path avoids the batch bookkeeping.
    """
    out: list = []
    for (app, variant), group in group_by_trace(tasks).items():
        if len(group) >= 2:
            out.append(_BatchTask(app, variant, group))
        else:
            out.extend(group)
    return out


class _Interrupted(Exception):
    """Internal: a graceful-stop signal arrived mid-sweep."""

    def __init__(self, signal_name: str) -> None:
        self.signal_name = signal_name
        super().__init__(signal_name)


class _InterruptWatch:
    """Deferred SIGINT/SIGTERM: first signal requests a graceful stop.

    Installed only while a journaled sweep runs in the main thread. The
    first signal sets a flag the scheduler loops poll — the journal is
    already flushed record-by-record, so stopping between completions
    loses only the in-flight window. A second SIGINT falls through to
    :class:`KeyboardInterrupt` so a stuck sweep can still be killed.
    """

    def __init__(self) -> None:
        self.signal_name: str | None = None
        self.installed = False
        self._previous: dict[int, object] = {}

    @property
    def triggered(self) -> bool:
        return self.signal_name is not None

    def _handle(self, signum, frame) -> None:
        if self.signal_name is not None and signum == signal.SIGINT:
            raise KeyboardInterrupt
        self.signal_name = signal.Signals(signum).name

    def __enter__(self) -> "_InterruptWatch":
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[signum] = signal.signal(
                        signum, self._handle
                    )
                except (ValueError, OSError):  # pragma: no cover
                    continue
            self.installed = bool(self._previous)
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                continue
        self._previous.clear()
        self.installed = False

    def check(self) -> None:
        if self.signal_name is not None:
            raise _Interrupted(self.signal_name)


def _point_failure(task: _Task, kind: str, error_type: str, message: str,
                   tb: str):
    from repro.engine.digest import SHORT_DIGEST, config_digest
    from repro.engine.telemetry import PointFailure

    app, variant, config = task.point
    return PointFailure(
        app=app,
        variant=variant,
        config_digest=config_digest(config)[:SHORT_DIGEST],
        kind=kind,
        error_type=error_type,
        message=message,
        traceback=tb,
        attempts=task.attempts,
    )


def _shutdown_pool(pool, kill: bool = False) -> None:
    """Tear a pool down; ``kill`` terminates workers (hung or broken).

    Termination escalates to SIGKILL for workers that survive SIGTERM —
    otherwise interpreter exit would block forever joining the
    executor's management thread while a hung worker sleeps on.
    """
    if kill:
        processes = list(
            (getattr(pool, "_processes", None) or {}).values()
        )
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass
        for process in processes:
            try:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.kill()
            except Exception:
                pass
    try:
        pool.shutdown(wait=not kill, cancel_futures=True)
    except Exception:
        pass


def _result_digest(result) -> str:
    """Digest of a point's canonical result payload (for the journal)."""
    from repro.engine import serialize
    from repro.engine.digest import result_payload_digest

    return result_payload_digest(serialize.characterisation_to_dict(result))


def _journal_done(journal, key, result) -> None:
    if journal is not None:
        journal.record_point_done(key, _result_digest(result))


def _batch_counters(engine) -> dict:
    """Snapshot of the engine's batched-simulation telemetry counters.

    Taken before and after a sweep so the run journal records only this
    sweep's contribution (the engine's stats accumulate across sweeps).
    """
    stats = engine.stats
    return {
        "groups": len(stats.batch_sizes),
        "points": stats.batched_points,
        "vectorized": stats.batch_vectorized,
        "fallback": stats.batch_fallback,
        "decode_reuse_hits": stats.decode_reuse_hits,
    }


def _stream_counters(engine) -> dict:
    """Snapshot of the engine's streaming-simulation telemetry.

    Additive counters journal as this-sweep deltas; the two high-water
    marks (queue depth, segment bytes) journal as their current values.
    """
    stats = engine.stats
    return {
        "streams": stats.stream_streams,
        "segments_produced": stats.stream_segments_produced,
        "segments_consumed": stats.stream_segments_consumed,
        "handoffs": stats.stream_handoffs,
        "queue_peak": stats.stream_queue_peak,
        "peak_segment_bytes": stats.stream_peak_segment_bytes,
    }


_STREAM_ADDITIVE = (
    "streams", "segments_produced", "segments_consumed", "handoffs",
)


def _accel_counters(engine) -> dict:
    """Snapshot of the engine's accelerator-offload telemetry counters.

    Taken before and after a sweep so the run journal records only this
    sweep's contribution (every counter is additive).
    """
    stats = engine.stats
    return {
        "points": stats.accel_points,
        "batched": stats.accel_batched,
        "bioseal_points": stats.accel_bioseal_points,
        "aphmm_points": stats.accel_aphmm_points,
        "offload_cycles": stats.accel_offload_cycles,
        "transfer_cycles": stats.accel_transfer_cycles,
    }


def _journal_failed(journal, key, failure) -> None:
    if journal is not None:
        journal.record_point_failed(
            key, failure.kind, failure.error_type, failure.message
        )


def _run_serial(engine, tasks, retries: int, backoff: float,
                journal=None, watch=None) -> dict:
    """Run ``tasks`` in-process with bounded retries; returns failures.

    Per-point deadlines are **not** enforced here (there is no worker
    process to kill): see :data:`SERIAL_TIMEOUT_NOTE`. A graceful-stop
    signal is honoured between points — an in-flight point runs to
    completion first.
    """
    from repro.engine.telemetry import FAILURE_EXCEPTION

    failures: dict = {}
    queue: deque = deque(tasks)
    while queue:
        task = queue.popleft()
        if watch is not None:
            watch.check()
        if isinstance(task, _BatchTask):
            try:
                results = engine.characterize_batch(
                    task.app, task.variant,
                    [t.point[2] for t in task.tasks],
                )
            except Exception:
                # Never charged and never retried as a unit: the points
                # re-run individually so a bad point only fails itself.
                queue.extendleft(reversed(task.tasks))
            else:
                for t, result in zip(task.tasks, results):
                    _journal_done(journal, t.key, result)
            continue
        while True:
            task.attempts += 1
            try:
                app, variant, config = task.point
                result = engine.characterize(app, variant, config)
            except Exception as exc:
                if task.attempts > retries:
                    failure = _point_failure(
                        task, FAILURE_EXCEPTION, type(exc).__name__,
                        str(exc), traceback_module.format_exc(),
                    )
                    failures[task.key] = failure
                    _journal_failed(journal, task.key, failure)
                    break
                time.sleep(backoff * (2 ** (task.attempts - 1)))
            else:
                _journal_done(journal, task.key, result)
                break
    return failures


def _run_pool(engine, tasks, workers: int, worker, timeout: float | None,
              retries: int, backoff: float, max_rebuilds: int,
              journal=None, watch=None) -> dict:
    """Drain ``tasks`` through a self-healing process pool.

    Returns a ``{key: PointFailure}`` map for the points that failed
    after retries; every success is adopted into ``engine`` directly
    (and journaled, when a journal is attached). A graceful-stop signal
    kills the pool immediately — every already-journaled completion is
    durable, so only the in-flight window is lost.
    """
    from repro.engine.telemetry import (
        FAILURE_CRASH,
        FAILURE_EXCEPTION,
        FAILURE_TIMEOUT,
    )

    context = _pool_context()
    cache_root = engine.cache.root
    queue: deque = deque(tasks)
    failures: dict = {}
    #: Keys of the points that were in flight when a pool died. While
    #: any remain, submission narrows to one point at a time so the next
    #: crash is attributable to exactly one point.
    suspects: set = set()
    rebuilds = 0
    pool = None
    in_flight: dict = {}  # future -> (task, deadline)

    def charge(task, kind, error_type, message, tb):
        """Bill one attempt; requeue with backoff or record the failure."""
        suspects.discard(task.key)
        if task.attempts > retries:
            failure = _point_failure(task, kind, error_type, message, tb)
            failures[task.key] = failure
            _journal_failed(journal, task.key, failure)
        else:
            if kind == FAILURE_CRASH:
                # Still a crash suspect on its next (isolated) attempt.
                suspects.add(task.key)
            time.sleep(backoff * (2 ** (task.attempts - 1)))
            queue.append(task)

    def explode(task, suspect=False):
        """A failed batch requeues its constituents as individual points.

        The batch attempt is never billed to the points (their own
        attempt counters are untouched); with ``suspect`` the
        constituents drain one at a time so a crashing point is
        identified exactly.
        """
        suspects.discard(task.key)
        for t in task.tasks:
            if suspect:
                suspects.add(t.key)
            queue.append(t)

    def submit_ready():
        if suspects:
            # Surface suspects first, one at a time, so a repeat crash
            # names its culprit exactly.
            ordered = sorted(queue, key=lambda t: t.key not in suspects)
            queue.clear()
            queue.extend(ordered)
        window = 1 if suspects else workers
        while queue and len(in_flight) < window:
            task = queue.popleft()
            task.attempts += 1
            try:
                if isinstance(task, _BatchTask):
                    future = pool.submit(
                        _characterize_batch_worker,
                        (task.app, task.variant,
                         [t.point[2] for t in task.tasks], cache_root),
                    )
                else:
                    future = pool.submit(worker, (*task.point, cache_root))
            except BrokenProcessPool:
                # The pool died under a crash we have not drained yet:
                # put the task back uncharged and let the caller rebuild.
                task.attempts -= 1
                queue.appendleft(task)
                raise
            # A batch's deadline scales with its size: it is doing the
            # work of len(tasks) points in one future.
            scale = len(task.tasks) if isinstance(task, _BatchTask) else 1
            deadline = (
                time.monotonic() + timeout * scale
                if timeout is not None else None
            )
            in_flight[future] = (task, deadline)

    def abandon_pool(kill):
        """Kill/shut the pool; requeue uncharged victims; count a rebuild."""
        nonlocal pool, rebuilds
        for future, (task, _) in list(in_flight.items()):
            # The pool died around them, not because of them: refund the
            # attempt, but isolate them while they drain.
            task.attempts -= 1
            suspects.add(task.key)
            queue.append(task)
        in_flight.clear()
        _shutdown_pool(pool, kill=kill)
        pool = None
        rebuilds += 1
        engine.stats.pool_rebuilds += 1

    try:
        while queue or in_flight:
            if watch is not None and watch.triggered:
                # Graceful stop: the journal already holds every
                # completed point; reclaim the workers and surface the
                # interrupt. In-flight attempts are simply lost (their
                # points re-run on resume).
                _shutdown_pool(pool, kill=True)
                pool = None
                watch.check()
            if pool is None:
                if rebuilds > max_rebuilds:
                    # The pool keeps dying: finish the remainder serially.
                    engine.stats.serial_fallbacks += 1
                    remaining = list(queue)
                    queue.clear()
                    failures.update(
                        _run_serial(
                            engine, remaining, retries, backoff,
                            journal=journal, watch=watch,
                        )
                    )
                    break
                pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context,
                    initializer=_worker_init,
                    initargs=(watch is not None and watch.installed,),
                )
            try:
                submit_ready()
            except BrokenProcessPool:
                abandon_pool(kill=True)
                continue
            if not in_flight:
                continue

            wait_for = None
            if timeout is not None:
                now = time.monotonic()
                nearest = min(
                    deadline for _, deadline in in_flight.values()
                )
                wait_for = max(0.0, nearest - now)
            if watch is not None and watch.installed:
                # A signal interrupts wait() but cannot end it early, so
                # cap the sleep: the loop re-checks the flag each lap.
                wait_for = (
                    _INTERRUPT_POLL_SECONDS
                    if wait_for is None
                    else min(wait_for, _INTERRUPT_POLL_SECONDS)
                )
            done, _ = wait(
                set(in_flight), timeout=wait_for,
                return_when=FIRST_COMPLETED,
            )

            crashed: list = []
            for future in done:
                task, _ = in_flight.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool as exc:
                    crashed.append((task, exc))
                except Exception as exc:
                    if isinstance(task, _BatchTask):
                        # One bad point must not fail the group: run the
                        # constituents individually instead.
                        explode(task)
                        continue
                    # The worker raised but the pool survived: a plain
                    # per-point failure, charged and bounded-retried.
                    charge(
                        task, FAILURE_EXCEPTION, type(exc).__name__,
                        str(exc),
                        "".join(traceback_module.format_exception(exc)),
                    )
                else:
                    if isinstance(task, _BatchTask):
                        app, variant, results, stats = payload
                        engine.stats.merge(stats)
                        for t, result in zip(task.tasks, results):
                            engine.adopt(app, variant, t.point[2], result)
                            _journal_done(journal, t.key, result)
                        suspects.discard(task.key)
                    else:
                        app, variant, config, result, stats = payload
                        engine.adopt(app, variant, config, result, stats)
                        suspects.discard(task.key)
                        _journal_done(journal, task.key, result)

            if crashed:
                if len(crashed) == 1 and not in_flight:
                    # Exactly one unit was in flight: the crash is its.
                    task, exc = crashed[0]
                    if isinstance(task, _BatchTask):
                        # Any constituent may be the culprit: drain them
                        # one at a time so the next crash names it.
                        explode(task, suspect=True)
                    else:
                        charge(
                            task, FAILURE_CRASH, type(exc).__name__,
                            str(exc), "",
                        )
                else:
                    # Ambiguous: refund everyone, isolate, retry singly.
                    for task, _ in crashed:
                        if isinstance(task, _BatchTask):
                            explode(task, suspect=True)
                        else:
                            task.attempts -= 1
                            suspects.add(task.key)
                            queue.append(task)
                abandon_pool(kill=True)
                continue

            if timeout is not None and in_flight:
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, deadline) in in_flight.items()
                    if deadline <= now
                ]
                if expired:
                    for future in expired:
                        task, _ = in_flight.pop(future)
                        if isinstance(task, _BatchTask):
                            # Too slow as a group: fall back to points
                            # with their own per-point deadlines.
                            explode(task)
                            continue
                        charge(
                            task, FAILURE_TIMEOUT, "TimeoutError",
                            f"design point exceeded {timeout:g}s", "",
                        )
                    # A hung worker can only be reclaimed by killing the
                    # pool; the survivors are requeued uncharged.
                    abandon_pool(kill=True)
    finally:
        if pool is not None:
            _shutdown_pool(pool)
    return failures


def fan_out(
    engine,
    points: list[tuple[str, str, CoreConfig]],
    jobs: int | None = None,
    *,
    on_error: str = ON_ERROR_RAISE,
    timeout: float | None = None,
    retries: int | None = None,
    backoff: float | None = None,
    max_rebuilds: int | None = None,
    worker=None,
    journal=True,
    run_id: str | None = None,
    batch: bool | None = None,
) -> list:
    """Characterize ``points`` with up to ``jobs`` workers.

    Returns results in input order. Points already memoised in
    ``engine`` are served from memory; the rest are deduplicated by
    canonical key and dispatched once each, with per-point deadlines,
    bounded retries, and pool-rebuild recovery (module docstring).

    Under ``on_error="keep_going"`` the failed points' slots hold
    ``None``; under ``on_error="raise"`` a :class:`SweepError` names
    them (successful points stay memoised either way).

    Durability: with ``journal=True`` (the default) and an enabled
    persistent cache, the sweep appends to a run journal
    (``runs/<run_id>.jsonl`` under the cache dir) — a header, one
    fsync'd record per completed/failed point, and a completion footer
    (see :mod:`repro.engine.journal`). While the journal is open,
    SIGINT/SIGTERM request a *graceful* stop: the pool is killed, the
    journal stays valid, and :class:`SweepInterrupted` (naming the
    resumable ``run_id``) is raised instead of a bare
    ``KeyboardInterrupt``. Pass an existing
    :class:`~repro.engine.journal.RunJournal` to continue a resumed
    run (the scheduler then owns and closes it), or ``journal=False``
    to disable durability entirely.

    ``batch`` enables trace-sharing batch dispatch (module docstring);
    ``None`` defers to ``REPRO_BATCH`` (default on). A custom
    ``worker`` disables batching — instrumented workers must see every
    point individually.
    """
    from repro.engine.digest import point_key
    from repro.engine.journal import RunJournal

    if on_error not in (ON_ERROR_RAISE, ON_ERROR_KEEP_GOING):
        raise WorkloadError(
            f"on_error must be {ON_ERROR_RAISE!r} or "
            f"{ON_ERROR_KEEP_GOING!r}, got {on_error!r}"
        )
    jobs = resolve_jobs(jobs)
    timeout = resolve_timeout(timeout)
    retries = resolve_retries(retries)
    backoff = resolve_backoff(backoff)
    if max_rebuilds is None:
        max_rebuilds = DEFAULT_MAX_REBUILDS
    custom_worker = worker is not None
    use_batch = resolve_batch(batch) and not custom_worker
    if worker is None:
        worker = _characterize_worker

    engine.stats.jobs = max(engine.stats.jobs, jobs)

    keys = [point_key(app, variant, config) for app, variant, config in points]
    pending: dict[tuple, _Task] = {}
    for key, point in zip(keys, points):
        if key in engine._memo or key in pending:
            # Served from memory when the ordered output is assembled —
            # a real memo hit, counted once per duplicate request.
            engine.stats.memo_hits += 1
        else:
            pending[key] = _Task(key, point)

    journal_obj: RunJournal | None = None
    if isinstance(journal, RunJournal):
        # A resume attempt: the caller re-opened the run's journal and
        # already replayed its completed points into the memo.
        journal_obj = journal
    elif journal and engine.cache.enabled and pending:
        journal_obj = RunJournal.create(
            engine.cache.root, points, jobs=jobs, run_id=run_id,
        )
        # Memo-served points are durable immediately: their results
        # exist, so a resume must never re-run them.
        for key in dict.fromkeys(keys):
            if key in engine._memo:
                journal_obj.record_point_done(
                    key, _result_digest(engine._memo[key])
                )

    serial_notes: list[str] = []
    failures: dict = {}
    before = _batch_counters(engine)
    stream_before = _stream_counters(engine)
    accel_before = _accel_counters(engine)
    try:
        if pending:
            tasks = list(pending.values())
            if not custom_worker:
                # One decode per trace-sharing group, before any fork,
                # so workers inherit the warm decode (satellite of the
                # batched-simulation work; helps the non-batched path
                # and the serial path alike).
                _prewarm_traces(tasks, engine)
            if use_batch:
                tasks = _batch_tasks(tasks)
            with _InterruptWatch() if journal_obj is not None \
                    else _NullWatch() as watch:
                if jobs == 1 or len(tasks) == 1:
                    if timeout is not None:
                        serial_notes.append(SERIAL_TIMEOUT_NOTE)
                        engine.stats.note(SERIAL_TIMEOUT_NOTE)
                    failures = _run_serial(
                        engine, tasks, retries, backoff,
                        journal=journal_obj, watch=watch,
                    )
                else:
                    failures = _run_pool(
                        engine, tasks, min(jobs, len(tasks)), worker,
                        timeout, retries, backoff, max_rebuilds,
                        journal=journal_obj, watch=watch,
                    )
        if journal_obj is not None:
            after = _batch_counters(engine)
            delta = {
                key: after[key] - before[key] for key in after
            }
            if any(delta.values()):
                journal_obj.record_batch_stats(delta)
            stream_after = _stream_counters(engine)
            stream_delta = {
                key: stream_after[key] - stream_before[key]
                for key in _STREAM_ADDITIVE
            }
            if any(stream_delta.values()):
                stream_delta["queue_peak"] = stream_after["queue_peak"]
                stream_delta["peak_segment_bytes"] = (
                    stream_after["peak_segment_bytes"]
                )
                journal_obj.record_stream_stats(stream_delta)
            accel_after = _accel_counters(engine)
            accel_delta = {
                key: accel_after[key] - accel_before[key]
                for key in accel_after
            }
            if any(accel_delta.values()):
                journal_obj.record_accel_stats(accel_delta)
            journal_obj.record_complete(len(failures))
    except _Interrupted as stop:
        unique = list(dict.fromkeys(keys))
        done = sum(1 for key in unique if key in engine._memo)
        raise SweepInterrupted(
            journal_obj.run_id if journal_obj is not None else None,
            stop.signal_name, done, len(unique) - done,
        ) from None
    finally:
        if journal_obj is not None:
            journal_obj.close()

    if failures:
        for failure in failures.values():
            engine.stats.record_failure(failure)
        if on_error == ON_ERROR_RAISE:
            raise SweepError(failures.values(), notes=serial_notes)

    return [engine._memo.get(key) for key in keys]


class _NullWatch:
    """Watch stand-in for unjournaled sweeps (signals untouched)."""

    installed = False
    triggered = False
    signal_name = None

    def __enter__(self) -> "_NullWatch":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def check(self) -> None:
        return None
