"""Process-pool fan-out of design points.

The scheduler deduplicates in-flight keys (a sweep that names the same
(app, variant, config) twice simulates it once), fans the unique
pending points out over a ``concurrent.futures`` process pool, and
merges worker results — and worker telemetry — back into the parent
engine. Workers share the parent's persistent cache directory, so a
trace or result any worker generates is visible to every later run.

Job count resolution: explicit argument, else the ``REPRO_JOBS``
environment variable, else ``os.cpu_count()``.

Parallel output is byte-identical to serial output because every point
is deterministic, simulated on a fresh core, and results are merged
back by key (never by completion order).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.errors import WorkloadError
from repro.uarch.config import CoreConfig


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise WorkloadError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise WorkloadError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _pool_context():
    """Prefer fork (workers inherit warm in-memory trace caches)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _characterize_worker(task):
    """Run one design point in a worker process (module-level: picklable)."""
    app, variant, config, cache_root = task
    from repro.engine.engine import Engine

    engine = Engine(cache_dir=cache_root)
    result = engine.characterize(app, variant, config)
    return app, variant, config, result, engine.stats


def fan_out(
    engine,
    points: list[tuple[str, str, CoreConfig]],
    jobs: int | None = None,
) -> list:
    """Characterize ``points`` with up to ``jobs`` workers.

    Returns results in input order. Points already memoised in
    ``engine`` are served from memory; the rest are deduplicated by
    canonical key and dispatched once each.
    """
    from repro.engine.digest import point_key

    jobs = resolve_jobs(jobs)
    engine.stats.jobs = max(engine.stats.jobs, jobs)

    keys = [point_key(app, variant, config) for app, variant, config in points]
    pending: dict[tuple, tuple] = {}
    for key, (app, variant, config) in zip(keys, points):
        if key not in engine._memo and key not in pending:
            pending[key] = (app, variant, config)

    if pending:
        if jobs == 1 or len(pending) == 1:
            for app, variant, config in pending.values():
                engine.characterize(app, variant, config)
        else:
            cache_root = engine.cache.root
            tasks = [
                (app, variant, config, cache_root)
                for app, variant, config in pending.values()
            ]
            workers = min(jobs, len(tasks))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            ) as pool:
                for app, variant, config, result, stats in pool.map(
                    _characterize_worker, tasks
                ):
                    engine.adopt(app, variant, config, result, stats)

    return [engine.characterize(app, variant, config)
            for app, variant, config in points]
